//! The clustered-backend cycle loop (DESIGN.md §11).
//!
//! The unified loop in `core.rs` owns one issue queue and one function-unit
//! pool; this loop partitions both into `ClusterConfig::clusters` slices and
//! adds a dispatch-time steering stage. The pieces that stay *global* are
//! deliberate modeling choices, documented here once:
//!
//! * the ROB, rename map, free list and commit stage — clustering splits the
//!   execution backend, not the in-order machinery around it;
//! * the load/store queues and store-to-load forwarding — memory ordering is
//!   resolved centrally, so a forward pays no inter-cluster penalty;
//! * the physical register *storage* — only operand forwarding is clustered:
//!   a value produced in cluster A wakes A's consumers at local writeback
//!   and every other cluster's consumers `bypass_penalty` cycles later.
//!
//! Cross-cluster visibility is tracked as one bitset per cluster over the
//! physical registers, plus a small calendar of pending remote wakeups.
//! Each register carries a generation counter bumped at allocation: a
//! register can be freed at commit and re-allocated while a remote wakeup
//! for its *previous* value is still in flight, and the generation check
//! discards exactly those stale events.
//!
//! The loop intentionally has **no idle-cycle skip-ahead**: the unified
//! loop's skip replicates per-cycle accounting exactly, so omitting it
//! changes no counter — and it keeps this (much younger) timing model
//! simple enough for the cycle-accuracy pins in `tests/cycle_accuracy.rs`
//! to be hand-checked. The N=1, penalty-0 configuration is asserted
//! cycle-identical to the unified backend by those pins.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

use dide_analysis::Verdict;
use dide_emu::PagedShadow;
use dide_isa::{Program, Reg};
use dide_mem::MemoryHierarchy;
use dide_obs::EventKind;
use dide_predictor::dead::{CfiDeadPredictor, DeadPredictor, OracleDeadPredictor, PredictInput};
use dide_predictor::future::CfSignature;

use crate::config::{EliminationPolicy, PipelineConfig, SteerPolicy};
use crate::core::{claim_store_bytes, take_eliminated_producer};
use crate::frontend::Frontend;
use crate::fu::{FuClass, FuPool};
use crate::iq::{IqEntry, IssueQueue};
use crate::lsq::LoadStoreQueues;
use crate::predecode::predecode;
use crate::regfile::{PhysReg, PhysRegFile};
use crate::rename::{Mapping, RenameMap};
use crate::rob::{DestInfo, Rob, RobEntry};
use crate::source::RecordSource;
use crate::stats::{ClusterStats, PipelineStats};
use crate::wheel::{Completion, CompletionQueue};

/// A pending cross-cluster wakeup: at `cycle`, generation `gen` of register
/// `reg` becomes visible to cluster `cluster`. Ordered by the full tuple so
/// the heap drains deterministically.
type RemoteWakeup = Reverse<(u64, u16, u32, u8)>;

/// Per-cluster operand visibility plus the register generations that guard
/// in-flight remote wakeups against free/re-allocate races.
struct Visibility {
    /// One ready-style bitset per cluster (64 registers per word).
    visible: Vec<Vec<u64>>,
    /// Allocation generation per physical register.
    gen: Vec<u32>,
    /// Cluster that produces (or last produced) each register's value.
    producer: Vec<u8>,
}

impl Visibility {
    fn new(clusters: usize, phys_regs: usize, reserved: usize) -> Visibility {
        let mut visible = vec![vec![0u64; phys_regs.div_ceil(64)]; clusters];
        for set in &mut visible {
            for i in 0..reserved {
                set[i / 64] |= 1 << (i % 64);
            }
        }
        Visibility { visible, gen: vec![0; phys_regs], producer: vec![0; phys_regs] }
    }

    fn is_visible(&self, cluster: usize, p: PhysReg) -> bool {
        self.visible[cluster][p.0 as usize / 64] & (1 << (p.0 as usize % 64)) != 0
    }

    fn set_visible(&mut self, cluster: usize, p: PhysReg) {
        self.visible[cluster][p.0 as usize / 64] |= 1 << (p.0 as usize % 64);
    }

    /// Allocation bookkeeping: the new value is visible nowhere yet, and
    /// any remote wakeup still in flight for the register's previous value
    /// is invalidated by the generation bump.
    fn on_alloc(&mut self, p: PhysReg, producer: usize) {
        for set in &mut self.visible {
            set[p.0 as usize / 64] &= !(1 << (p.0 as usize % 64));
        }
        self.gen[p.0 as usize] = self.gen[p.0 as usize].wrapping_add(1);
        self.producer[p.0 as usize] = producer as u8;
    }
}

/// The clustered twin of `Core::run_loop`; see the module docs for what is
/// partitioned and what stays global. Stage order per cycle matches the
/// unified loop exactly: remote wakeups + writeback, commit, issue,
/// rename/dispatch, fetch, occupancy.
#[allow(clippy::too_many_lines)]
pub(crate) fn run_loop_clustered(
    cfg: &PipelineConfig,
    program: &Program,
    mut source: RecordSource<'_, '_>,
    verdicts: &[Verdict],
    mut events: Option<&mut dide_obs::EventTrace>,
) -> PipelineStats {
    let ccfg = cfg.cluster.expect("clustered loop needs a cluster config");
    let n = ccfg.clusters;
    let penalty = u64::from(ccfg.bypass_penalty);
    let cheap = n - 1;
    let elim_on = cfg.dead.policy.enabled();
    let total = verdicts.len() as u64;

    // `DeadSteer` without elimination still needs dead predictions — to
    // steer on, not to squash on. Predecode eligibility (which drives
    // signatures, prediction and commit-time training) is computed under
    // the full policy; the actual `cfg.dead.policy` stays `Off`, so nothing
    // is ever eliminated and no dead-tag mapping can exist.
    let mut effective = *cfg;
    if ccfg.steer == SteerPolicy::DeadSteer && !elim_on {
        effective.dead.policy = EliminationPolicy::RegAndStore;
    }
    let predec = predecode(program, &effective);
    let track_stores = cfg.dead.policy.covers_stores();

    let mut stats =
        PipelineStats { clusters: vec![ClusterStats::default(); n], ..PipelineStats::default() };
    let mut hierarchy = MemoryHierarchy::new(cfg.hierarchy);
    let mut frontend = Frontend::new(cfg, &predec);
    let mut regs = PhysRegFile::new(cfg.phys_regs, Reg::COUNT);
    let mut map = RenameMap::new();
    let mut rob = Rob::new(cfg.rob_entries);
    let mut iqs: Vec<IssueQueue> =
        (0..n).map(|_| IssueQueue::new((cfg.iq_entries / n).max(1), cfg.phys_regs)).collect();
    let iq_slice = (cfg.iq_entries / n).max(1);
    let mut lsq = LoadStoreQueues::new(cfg.lq_entries, cfg.sq_entries);
    let mut fus: Vec<FuPool> = (0..n)
        .map(|_| {
            let f = cfg.fu;
            FuPool::new(crate::config::FuConfig {
                alus: (f.alus / n).max(1),
                muls: (f.muls / n).max(1),
                divs: (f.divs / n).max(1),
                mem_ports: (f.mem_ports / n).max(1),
                ..f
            })
        })
        .collect();
    let mut predictor: Box<dyn DeadPredictor> = if cfg.dead.oracle {
        Box::new(OracleDeadPredictor::from_verdicts(verdicts))
    } else {
        Box::new(CfiDeadPredictor::new(cfg.dead.predictor))
    };
    let mut completions = CompletionQueue::new();
    let mut eliminated_stores: HashSet<u64> = HashSet::new();
    let mut store_shadow: PagedShadow<u64> = PagedShadow::new();
    let mut vis = Visibility::new(n, cfg.phys_regs, Reg::COUNT);
    let mut remote: BinaryHeap<RemoteWakeup> = BinaryHeap::new();
    let mut rename_stalled_until = 0u64;
    // Round-robin steering cursor, advanced only on successful dispatch so
    // stalled attempts do not skew the rotation.
    let mut rr = 0usize;
    // Merged (seq, slot, cluster) issue candidates, reused across cycles.
    let mut ready_scratch: Vec<(u64, u32, usize)> = Vec::new();
    let mut cluster_scratch: Vec<(u64, u32)> = Vec::new();

    let mut committed = 0u64;
    let mut now = 0u64;
    let deadlock_guard = 10_000u64.saturating_add(total.saturating_mul(1_000));

    while committed < total {
        assert!(
            now < deadlock_guard,
            "clustered pipeline deadlock: {committed}/{total} committed after {now} cycles \
             (rob {}/{}, iq {:?}, free regs {}, remote wakeups {})",
            rob.len(),
            cfg.rob_entries,
            iqs.iter().map(IssueQueue::len).collect::<Vec<_>>(),
            regs.free_count(),
            remote.len(),
        );

        // ---- cross-cluster wakeups due this cycle ----
        // Drained before writeback: every due event was scheduled at least
        // one cycle ago (penalty >= 1 on this path), so the two never
        // race within a cycle. A generation mismatch means the register
        // was re-allocated while the event was in flight — stale, drop it.
        while let Some(&Reverse((cycle, reg, gen, k))) = remote.peek() {
            if cycle > now {
                break;
            }
            remote.pop();
            let p = PhysReg(reg);
            if vis.gen[reg as usize] == gen {
                let k = k as usize;
                vis.set_visible(k, p);
                let woken = iqs[k].wakeup(p);
                stats.clusters[k].bypass_stalls += u64::from(woken);
            }
        }

        // ---- writeback: drain completions due this cycle ----
        while let Some(c) = completions.pop_due(now) {
            rob.complete(c.seq);
            if let Some(p) = c.dest {
                regs.set_ready(p);
                let home = vis.producer[p.0 as usize] as usize;
                vis.set_visible(home, p);
                iqs[home].wakeup(p);
                stats.rf_writes += 1;
                if penalty == 0 {
                    // An ideal bypass network: remote consumers wake at the
                    // same writeback, with no stall charged.
                    for (k, iq) in iqs.iter_mut().enumerate() {
                        if k != home {
                            vis.set_visible(k, p);
                            iq.wakeup(p);
                        }
                    }
                } else {
                    let gen = vis.gen[p.0 as usize];
                    for k in 0..n {
                        if k != home {
                            remote.push(Reverse((now + penalty, p.0, gen, k as u8)));
                        }
                    }
                }
            }
            if c.is_store {
                lsq.store_executed(c.seq);
            }
            if frontend.pending_branch() == Some(c.seq) {
                frontend.resolve_branch(c.seq, now);
            }
        }

        // ---- commit ----
        for _ in 0..cfg.commit_width {
            let Some(head) = rob.head() else { break };
            if !head.completed {
                break;
            }
            let e = rob.pop().expect("head exists");
            if let Some(d) = e.dest {
                if let Mapping::Phys(p) = d.prev {
                    regs.free(p);
                    stats.phys_frees += 1;
                }
            }
            if e.is_cond_branch {
                stats.branches += 1;
            }
            if e.is_load && !e.eliminated {
                lsq.pop_load(e.seq);
            }
            if e.is_store {
                if e.eliminated {
                    stats.savings.dcache_accesses_saved += 1;
                } else {
                    lsq.pop_store(e.seq);
                    let mem = source.get(e.seq).mem().expect("stores carry an access");
                    hierarchy.access_data(mem.addr, true);
                }
            }
            // Audit dead-steering against the oracle: a live instruction
            // routed to the cheap cluster paid latency it should not have.
            // Zero by construction under the oracle predictor.
            if e.steered_dead && !verdicts[e.seq as usize].is_dead() {
                stats.steer.dead_wrong += 1;
            }
            if e.eligible {
                let was_dead = verdicts[e.seq as usize].is_dead();
                let input = PredictInput {
                    seq: e.seq,
                    static_index: source.get(e.seq).index,
                    signature: e.signature,
                };
                predictor.train(&input, was_dead);
                if was_dead {
                    stats.oracle_dead_committed += 1;
                }
                if e.eliminated {
                    stats.dead_predicted += 1;
                    stats.dead_predicted_correct += u64::from(was_dead);
                }
            }
            committed += 1;
            stats.committed += 1;
        }
        source.release_before(committed);

        // ---- issue / execute ----
        // Oldest-first select across *all* clusters under the global issue
        // width: per-cluster ready lists are already seq-sorted, so one
        // sort of the short merged list restores global age order.
        let mut issued = 0usize;
        for f in &mut fus {
            f.begin_cycle();
        }
        ready_scratch.clear();
        for (k, iq) in iqs.iter().enumerate() {
            if iq.ready_count() > 0 {
                cluster_scratch.clear();
                iq.collect_ready(&mut cluster_scratch);
                ready_scratch.extend(cluster_scratch.iter().map(|&(seq, slot)| (seq, slot, k)));
            }
        }
        ready_scratch.sort_unstable_by_key(|&(seq, _, _)| seq);
        for &(seq, slot, k) in &ready_scratch {
            if issued == cfg.issue_width {
                break;
            }
            let e = iqs[k].entry(slot);
            let fu = e.fu;
            if !fus[k].can_issue(fu, now) {
                continue;
            }
            let is_load = e.is_load;
            if is_load {
                let mem = source.get(seq).mem().expect("loads carry an access");
                if !lsq.load_may_issue(seq, mem) {
                    continue;
                }
            }
            let base_latency = fus[k].try_issue(fu, now).expect("availability checked above");
            let latency = if is_load {
                let mem = source.get(seq).mem().expect("loads carry an access");
                let access = hierarchy.access_data(mem.addr, false);
                if lsq.load_forwards(seq, mem) {
                    2
                } else {
                    1 + access
                }
            } else {
                base_latency
            };
            stats.rf_reads += e.srcs.iter().flatten().count() as u64;
            completions.push(Completion {
                cycle: now + u64::from(latency),
                seq,
                dest: e.dest,
                is_store: fu == FuClass::Mem && !is_load,
            });
            iqs[k].remove(slot);
            stats.clusters[k].issued += 1;
            issued += 1;
        }

        // ---- rename / dispatch / steer ----
        if now >= rename_stalled_until {
            'rename: for _ in 0..cfg.rename_width {
                let Some(seq) = frontend.peek_ready(now) else { break };
                if rob.is_full() {
                    stats.rob_full_stalls += 1;
                    break;
                }
                let r = source.get(seq);
                let pre = &predec[r.index as usize];
                let dest = pre.dest;
                let is_store = pre.is_store;
                let is_load = pre.is_load;

                let eligible = pre.eligible;
                let signature = if eligible {
                    frontend.signature(seq, cfg.dead.lookahead)
                } else {
                    CfSignature::empty()
                };
                let input = PredictInput { seq, static_index: r.index, signature };
                let predicted_dead = eligible && predictor.predict(&input);
                // With elimination on, a dead prediction squashes (the
                // paper's mechanism); with it off under `DeadSteer`, the
                // same prediction steers to the cheap cluster instead.
                let eliminate = predicted_dead && elim_on;
                let steer_dead = predicted_dead && !elim_on;
                if eligible {
                    if let Some(tr) = events.as_deref_mut() {
                        tr.record(now, EventKind::Verdict { seq, predicted_dead });
                    }
                }

                let mut srcs = [None, None];
                if !eliminate {
                    for (i, &src) in pre.srcs.iter().flatten().enumerate() {
                        match map.get(src) {
                            Mapping::Phys(p) => srcs[i] = Some(p),
                            Mapping::Dead(_) => {
                                let Some(p) = regs.alloc() else {
                                    stats.no_phys_stalls += 1;
                                    break 'rename;
                                };
                                stats.phys_allocs += 1;
                                // The recovered value materializes outside
                                // any cluster's datapath: ready and visible
                                // everywhere at once, like the initial
                                // architectural mappings.
                                vis.on_alloc(p, 0);
                                regs.set_ready(p);
                                for (k, iq) in iqs.iter_mut().enumerate() {
                                    vis.set_visible(k, p);
                                    iq.wakeup(p);
                                }
                                map.set(src, Mapping::Phys(p));
                                stats.dead_violations += 1;
                                if let Some(tr) = events.as_deref_mut() {
                                    tr.record(now, EventKind::Violation { seq });
                                }
                                rename_stalled_until = now + u64::from(cfg.dead.violation_penalty);
                                break 'rename;
                            }
                        }
                    }
                    if is_load && !eliminated_stores.is_empty() {
                        let mem = r.mem().expect("loads carry an access");
                        if take_eliminated_producer(&store_shadow, &mut eliminated_stores, mem) {
                            stats.dead_violations += 1;
                            if let Some(tr) = events.as_deref_mut() {
                                tr.record(now, EventKind::Violation { seq });
                            }
                            rename_stalled_until = now + u64::from(cfg.dead.violation_penalty);
                            break 'rename;
                        }
                    }
                }

                if eliminate {
                    // Squash pre-dispatch, exactly as the unified loop
                    // eliminates — the instruction enters no cluster.
                    let dest_info = dest.map(|arch| {
                        let prev = map.set(arch, Mapping::Dead(seq));
                        DestInfo { prev }
                    });
                    stats.savings.phys_allocs_saved += u64::from(dest.is_some());
                    stats.savings.iq_slots_saved += 1;
                    stats.savings.rf_writes_saved += u64::from(dest.is_some());
                    stats.savings.rf_reads_saved += pre.srcs.iter().flatten().count() as u64;
                    if is_load {
                        stats.savings.dcache_accesses_saved += 1;
                    }
                    if is_store {
                        eliminated_stores.insert(seq);
                        claim_store_bytes(
                            &mut store_shadow,
                            seq,
                            r.mem().expect("stores carry an access"),
                        );
                    }
                    if let Some(tr) = events.as_deref_mut() {
                        tr.record(now, EventKind::Eliminated { seq });
                    }
                    stats.dispatched += 1;
                    stats.steer.squashed += 1;
                    rob.push(RobEntry {
                        seq,
                        dest: dest_info,
                        eliminated: true,
                        completed: true,
                        is_load,
                        is_store,
                        is_cond_branch: pre.is_cond_branch,
                        eligible,
                        steered_dead: false,
                        signature,
                    });
                    frontend.pop(seq);
                    continue;
                }

                // Steering: pick the target cluster before the structural
                // checks, which are then per-cluster for the issue queue.
                let (cluster, used_rr) = if steer_dead {
                    (cheap, false)
                } else {
                    match ccfg.steer {
                        SteerPolicy::RoundRobin => (rr % n, true),
                        SteerPolicy::DependenceAffinity => {
                            // Follow the cluster producing the first still
                            // in-flight source; nothing in flight means no
                            // forward to save, so fall back to rotation.
                            match srcs.iter().flatten().find(|p| !regs.is_ready(**p)) {
                                Some(p) => (vis.producer[p.0 as usize] as usize, false),
                                None => (rr % n, true),
                            }
                        }
                        // Live instructions avoid the cheap cluster when
                        // there is more than one to rotate over.
                        SteerPolicy::DeadSteer if n > 1 => (rr % (n - 1), true),
                        SteerPolicy::DeadSteer => (0, true),
                    }
                };

                if iqs[cluster].is_full() {
                    stats.iq_full_stalls += 1;
                    break;
                }
                if is_load && lsq.lq_full() {
                    stats.lsq_full_stalls += 1;
                    break;
                }
                if is_store && lsq.sq_full() {
                    stats.lsq_full_stalls += 1;
                    break;
                }
                let mut dest_phys = None;
                if dest.is_some() && regs.free_count() == 0 {
                    stats.no_phys_stalls += 1;
                    break;
                }

                let dest_info = dest.map(|arch| {
                    let p = regs.alloc().expect("free count checked above");
                    stats.phys_allocs += 1;
                    vis.on_alloc(p, cluster);
                    dest_phys = Some(p);
                    let prev = map.set(arch, Mapping::Phys(p));
                    DestInfo { prev }
                });

                if is_load {
                    lsq.push_load(seq);
                }
                if is_store {
                    let mem = r.mem().expect("stores carry an access");
                    lsq.push_store(seq, mem);
                    if track_stores {
                        claim_store_bytes(&mut store_shadow, seq, mem);
                    }
                }
                // Readiness in this cluster is *visibility*, not the global
                // ready bit: a ready remote value still in its bypass
                // window counts as pending here.
                iqs[cluster]
                    .push_with(IqEntry { seq, srcs, fu: pre.fu, is_load, dest: dest_phys }, |p| {
                        vis.is_visible(cluster, p)
                    });
                stats.dispatched += 1;
                stats.clusters[cluster].dispatched += 1;
                if steer_dead {
                    stats.steer.dead += 1;
                    stats.clusters[cluster].steered_dead += 1;
                } else {
                    stats.steer.normal += 1;
                }
                if used_rr {
                    rr += 1;
                }
                rob.push(RobEntry {
                    seq,
                    dest: dest_info,
                    eliminated: false,
                    completed: false,
                    is_load,
                    is_store,
                    is_cond_branch: pre.is_cond_branch,
                    eligible,
                    steered_dead: steer_dead,
                    signature,
                });
                frontend.pop(seq);
            }
        }

        // ---- fetch ----
        frontend.fetch(now, &mut source, &mut hierarchy, &mut stats);

        // Occupancy accounting (end-of-cycle snapshot).
        stats.rob_occupancy_sum += rob.len() as u64;
        let iq_len: usize = iqs.iter().map(IssueQueue::len).sum();
        stats.iq_occupancy_sum += iq_len as u64;
        stats.phys_used_sum +=
            (cfg.phys_regs - regs.free_count()).saturating_sub(Reg::COUNT) as u64;
        if let Some(tr) = events.as_deref_mut() {
            if tr.should_sample(now) {
                tr.record(
                    now,
                    EventKind::Sample {
                        rob: rob.len() as u32,
                        iq: iq_len as u32,
                        lq: lsq.lq_len() as u32,
                        sq: lsq.sq_len() as u32,
                        free_regs: regs.free_count() as u32,
                    },
                );
            }
        }

        now += 1;
        debug_assert!(iqs.iter().all(|iq| iq.len() <= iq_slice));
    }
    debug_assert!(frontend.drained(&mut source), "all instructions must pass through fetch");
    stats.cycles = now;
    stats.memory = hierarchy.stats();
    stats
}
