//! Reorder buffer.

use dide_predictor::future::CfSignature;

use crate::rename::Mapping;

/// Destination bookkeeping for a renamed instruction: the mapping the
/// rename displaced (freed when this entry commits, if physical). Commit
/// is the only consumer — the architectural register and the installed
/// mapping are recoverable from the trace record if diagnostics ever need
/// them, so the ROB does not carry them through the pipeline.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DestInfo {
    /// The mapping displaced at rename.
    pub(crate) prev: Mapping,
}

/// One reorder-buffer entry.
#[derive(Debug, Clone)]
pub(crate) struct RobEntry {
    /// Dynamic sequence number (trace position).
    pub(crate) seq: u64,
    /// Destination bookkeeping, when the instruction writes a register.
    pub(crate) dest: Option<DestInfo>,
    /// Whether the instruction was eliminated as predicted-dead.
    pub(crate) eliminated: bool,
    /// Whether execution has completed (eliminated entries complete
    /// immediately).
    pub(crate) completed: bool,
    /// Whether the instruction is a load.
    pub(crate) is_load: bool,
    /// Whether the instruction is a store.
    pub(crate) is_store: bool,
    /// Whether the instruction is a conditional branch.
    pub(crate) is_cond_branch: bool,
    /// Whether this instance was eligible for dead prediction under the
    /// active policy (drives commit-time training).
    pub(crate) eligible: bool,
    /// Whether `DeadSteer` routed this instruction to the cheap cluster as
    /// predicted-dead (audited against the oracle verdict at commit).
    pub(crate) steered_dead: bool,
    /// CFI signature captured at rename (for commit-time training).
    pub(crate) signature: CfSignature,
}

/// A bounded in-order reorder buffer.
#[derive(Debug, Clone)]
pub(crate) struct Rob {
    entries: std::collections::VecDeque<RobEntry>,
    capacity: usize,
}

impl Rob {
    pub(crate) fn new(capacity: usize) -> Rob {
        assert!(capacity > 0, "ROB needs at least one entry");
        Rob { entries: std::collections::VecDeque::with_capacity(capacity), capacity }
    }

    pub(crate) fn is_full(&self) -> bool {
        self.entries.len() == self.capacity
    }

    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    pub(crate) fn push(&mut self, entry: RobEntry) {
        debug_assert!(!self.is_full(), "pushed into a full ROB");
        self.entries.push_back(entry);
    }

    /// The oldest entry, if any.
    pub(crate) fn head(&self) -> Option<&RobEntry> {
        self.entries.front()
    }

    /// Removes and returns the oldest entry.
    pub(crate) fn pop(&mut self) -> Option<RobEntry> {
        self.entries.pop_front()
    }

    /// Marks the entry with sequence number `seq` as completed.
    pub(crate) fn complete(&mut self, seq: u64) {
        // Entries are seq-ordered; binary search by seq.
        let front = self.entries.front().expect("completion for an empty ROB").seq;
        let idx = (seq - front) as usize;
        debug_assert_eq!(self.entries[idx].seq, seq, "ROB seqs must be dense");
        self.entries[idx].completed = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(seq: u64) -> RobEntry {
        RobEntry {
            seq,
            dest: None,
            eliminated: false,
            completed: false,
            is_load: false,
            is_store: false,
            is_cond_branch: false,
            eligible: false,
            steered_dead: false,
            signature: CfSignature::empty(),
        }
    }

    #[test]
    fn fifo_order() {
        let mut rob = Rob::new(4);
        rob.push(entry(0));
        rob.push(entry(1));
        assert_eq!(rob.head().unwrap().seq, 0);
        assert_eq!(rob.pop().unwrap().seq, 0);
        assert_eq!(rob.pop().unwrap().seq, 1);
        assert!(rob.head().is_none());
    }

    #[test]
    fn capacity_tracking() {
        let mut rob = Rob::new(2);
        rob.push(entry(0));
        assert!(!rob.is_full());
        rob.push(entry(1));
        assert!(rob.is_full());
    }

    #[test]
    fn wraparound_at_capacity_keeps_fifo_order_and_seq_indexing() {
        // Drive the head/tail indices around the ring many times past the
        // capacity: pop-one/push-one at full keeps the buffer full while the
        // physical positions wrap, and `complete` (which indexes by seq
        // offset from the head) must keep hitting the right entry.
        const CAP: usize = 4;
        let mut rob = Rob::new(CAP);
        for seq in 0..CAP as u64 {
            rob.push(entry(seq));
        }
        assert!(rob.is_full());
        let mut next = CAP as u64;
        for _ in 0..10 * CAP {
            // Complete the youngest entry, which sits just before the
            // wrapped tail position.
            rob.complete(next - 1);
            let popped = rob.pop().expect("full ROB has a head");
            assert_eq!(popped.seq, next - CAP as u64, "FIFO order across wraparound");
            assert!(!rob.is_full());
            rob.push(entry(next));
            assert!(rob.is_full());
            assert_eq!(rob.len(), CAP);
            next += 1;
        }
        // Everything still drains oldest-first, and the completion marks
        // landed on the right (wrapped) entries.
        let mut expected = next - CAP as u64;
        while let Some(e) = rob.pop() {
            assert_eq!(e.seq, expected);
            assert_eq!(e.completed, e.seq < next - 1, "seq {} completion mark", e.seq);
            expected += 1;
        }
        assert_eq!(expected, next);
    }

    #[test]
    fn complete_by_seq() {
        let mut rob = Rob::new(4);
        rob.push(entry(10));
        rob.push(entry(11));
        rob.push(entry(12));
        rob.complete(11);
        assert!(!rob.head().unwrap().completed);
        rob.pop();
        assert!(rob.head().unwrap().completed);
    }
}
