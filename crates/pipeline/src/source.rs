//! Record supply for the cycle loop.
//!
//! The core is indifferent to where its dynamic records come from: a fully
//! materialized trace (the classic path) or a bounded sliding window over a
//! live emulator (the streaming path). `RecordSource` is that seam. Records
//! are 40-byte `Copy` values, so `get` returns them by value — the stream
//! variant cannot hand out references into a window it is about to recycle.

use dide_emu::{DynInst, TraceStream};

/// Where the cycle loop reads dynamic instructions from.
#[derive(Debug)]
pub(crate) enum RecordSource<'a, 'p> {
    /// A fully materialized trace: every record resident for the whole run.
    Slice(&'a [DynInst]),
    /// A streaming window over a live emulator: fetch pulls epochs into
    /// existence on demand and [`RecordSource::release_before`] recycles
    /// them once the ROB has drained past.
    Stream(&'a mut TraceStream<'p>),
}

impl RecordSource<'_, '_> {
    /// The record with sequence number `seq`.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is past the end of the trace, or (for a stream)
    /// behind the released window — the core only asks for records between
    /// the commit head and the fetch position, which the window spans.
    pub(crate) fn get(&mut self, seq: u64) -> DynInst {
        match self {
            RecordSource::Slice(records) => records[seq as usize],
            RecordSource::Stream(stream) => {
                stream.get(seq).expect("in-flight seqs are within the trace")
            }
        }
    }

    /// The record at `seq`, or `None` once the trace is exhausted. For a
    /// stream this produces epochs as needed, so exhaustion is discovered
    /// exactly when fetch reaches it.
    pub(crate) fn try_get(&mut self, seq: u64) -> Option<DynInst> {
        match self {
            RecordSource::Slice(records) => records.get(seq as usize).copied(),
            RecordSource::Stream(stream) => stream.get(seq),
        }
    }

    /// Whether `pos` is past the end of the trace (producing up to it for
    /// a stream, exactly like [`RecordSource::try_get`]).
    pub(crate) fn end_reached(&mut self, pos: u64) -> bool {
        match self {
            RecordSource::Slice(records) => pos >= records.len() as u64,
            RecordSource::Stream(stream) => stream.end_reached(pos),
        }
    }

    /// Tells the source no record before `seq` will be read again. A slice
    /// ignores it; a stream recycles every epoch that ends at or before
    /// `seq` into its spare-buffer pool.
    pub(crate) fn release_before(&mut self, seq: u64) {
        match self {
            RecordSource::Slice(_) => {}
            RecordSource::Stream(stream) => stream.release_before(seq),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dide_emu::Emulator;
    use dide_isa::{ProgramBuilder, Reg};

    fn program(iters: i64) -> dide_isa::Program {
        let mut b = ProgramBuilder::new("src");
        b.li(Reg::T0, 0);
        b.li(Reg::T1, iters);
        let top = b.label();
        b.bind(top);
        b.addi(Reg::T0, Reg::T0, 1);
        b.blt(Reg::T0, Reg::T1, top);
        b.out(Reg::T0);
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn slice_and_stream_agree_record_for_record() {
        let p = program(100);
        let trace = Emulator::new(&p).run().unwrap();
        let mut slice = RecordSource::Slice(trace.records());
        let mut stream_inner = TraceStream::new(&p, 32);
        let mut stream = RecordSource::Stream(&mut stream_inner);
        for seq in 0..trace.len() as u64 {
            assert_eq!(slice.try_get(seq), stream.try_get(seq), "seq {seq}");
            // Release as a commit stage would; later reads stay ahead.
            stream.release_before(seq);
            slice.release_before(seq);
        }
        let end = trace.len() as u64;
        assert!(slice.end_reached(end));
        assert!(stream.end_reached(end));
        assert!(!slice.end_reached(end - 1));
    }
}
