//! Cycle-level out-of-order superscalar core with dead-instruction
//! elimination.
//!
//! This crate is the timing substrate of the reproduction: a 4-wide (by
//! default) out-of-order core in the style of the paper's simulated
//! machine, with
//!
//! * an in-order frontend (I-cache, gshare + BTB + RAS, fetch buffer),
//! * register renaming over a physical register file with a free list,
//! * a unified issue queue with oldest-first select and per-class function
//!   units,
//! * split load/store queues with oracle memory disambiguation,
//! * an in-order commit stage, and
//! * the paper's **dead-instruction elimination**: instructions predicted
//!   dead at rename skip physical-register allocation, the issue queue,
//!   execution, register-file traffic and (for loads/stores) the D-cache;
//!   reads of a dead-tagged register trigger a fixed-penalty recovery.
//!
//! The model is execution-driven along the committed path: the functional
//! emulator's trace supplies instructions and memory addresses, and branch
//! mispredictions appear as frontend redirect bubbles rather than wrong-path
//! execution (see DESIGN.md's substitution table).
//!
//! # Example
//!
//! ```
//! use dide_isa::{ProgramBuilder, Reg};
//! use dide_emu::Emulator;
//! use dide_analysis::DeadnessAnalysis;
//! use dide_pipeline::{Core, PipelineConfig};
//!
//! let mut b = ProgramBuilder::new("demo");
//! b.li(Reg::T0, 0).li(Reg::T1, 500);
//! let top = b.label();
//! b.bind(top);
//! b.addi(Reg::T0, Reg::T0, 1);
//! b.blt(Reg::T0, Reg::T1, top);
//! b.out(Reg::T0);
//! b.halt();
//! let trace = Emulator::new(&b.build()?).run()?;
//! let analysis = DeadnessAnalysis::analyze(&trace);
//!
//! let stats = Core::new(PipelineConfig::baseline()).run(&trace, &analysis);
//! assert!(stats.ipc() > 0.5);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod config;
mod core;
mod frontend;
mod fu;
mod iq;
mod lsq;
mod predecode;
mod regfile;
mod rename;
mod rob;
mod source;
mod stats;
mod wheel;

pub use crate::core::Core;
pub use config::{
    ClusterConfig, DeadElimConfig, EliminationPolicy, FuConfig, PipelineConfig, SteerPolicy,
};
pub use stats::{ClusterStats, PipelineStats, ResourceSavings, SteerStats};
