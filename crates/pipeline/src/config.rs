//! Machine configuration.

use dide_mem::HierarchyConfig;
use dide_predictor::dead::CfiConfig;

/// Function-unit counts and latencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuConfig {
    /// Simple integer ALUs (1-cycle).
    pub alus: usize,
    /// Pipelined multipliers.
    pub muls: usize,
    /// Unpipelined dividers.
    pub divs: usize,
    /// Memory ports (address generation + cache access issue).
    pub mem_ports: usize,
    /// Multiply latency in cycles.
    pub mul_latency: u32,
    /// Divide latency in cycles (the divider blocks for the duration).
    pub div_latency: u32,
}

impl Default for FuConfig {
    fn default() -> Self {
        FuConfig { alus: 4, muls: 1, divs: 1, mem_ports: 2, mul_latency: 3, div_latency: 12 }
    }
}

/// Which instructions the eliminator may act on (experiment E12).
///
/// Note that `RegOnly` is *not* simply "`RegAndStore` minus the store
/// savings": a dead store whose data was produced by an eliminated
/// instruction reads a dead tag and triggers a recovery, so asymmetric
/// policies can suffer systematic violations. The ablation quantifies
/// this — it is why the paper's mechanism covers whole dead chains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EliminationPolicy {
    /// No elimination: the machine runs as a plain out-of-order core.
    Off,
    /// Eliminate predicted-dead stores only (dead-store elimination).
    StoreOnly,
    /// Eliminate predicted-dead register writers only (ALU ops and loads).
    RegOnly,
    /// Eliminate both register writers and stores.
    RegAndStore,
}

impl EliminationPolicy {
    /// Whether the policy eliminates anything at all.
    #[must_use]
    pub fn enabled(self) -> bool {
        self != EliminationPolicy::Off
    }

    /// Whether the policy covers stores.
    #[must_use]
    pub fn covers_stores(self) -> bool {
        matches!(self, EliminationPolicy::StoreOnly | EliminationPolicy::RegAndStore)
    }

    /// Whether the policy covers register-writing instructions.
    #[must_use]
    pub fn covers_registers(self) -> bool {
        matches!(self, EliminationPolicy::RegOnly | EliminationPolicy::RegAndStore)
    }
}

/// Dead-instruction elimination configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadElimConfig {
    /// What to eliminate.
    pub policy: EliminationPolicy,
    /// The CFI dead-predictor table configuration.
    pub predictor: CfiConfig,
    /// Branch lookahead used to form CFI signatures.
    pub lookahead: u8,
    /// Cycles of rename stall charged per dead-tag violation (the paper's
    /// re-injection recovery, modeled as a fixed penalty).
    pub violation_penalty: u32,
    /// Jump-aware signatures (experiment E13): indirect jumps contribute a
    /// hash of their predicted target to the CFI signature, enabling dead
    /// prediction in interpreter-style dispatch code. Off by default
    /// (paper-faithful: the paper's signatures use branch directions only).
    pub jump_aware: bool,
    /// Limit study (experiment E14): replace the CFI predictor with the
    /// deadness oracle, eliminating every dead instruction with perfect
    /// foresight. Bounds what any predictor could achieve on this machine.
    pub oracle: bool,
}

impl Default for DeadElimConfig {
    fn default() -> Self {
        DeadElimConfig {
            policy: EliminationPolicy::RegAndStore,
            predictor: CfiConfig::default(),
            lookahead: 4,
            violation_penalty: 15,
            jump_aware: false,
            oracle: false,
        }
    }
}

/// Dispatch-time steering policy for a clustered backend (DESIGN.md §11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SteerPolicy {
    /// Rotate dispatched instructions across clusters, advancing only on a
    /// successful dispatch so stalls do not skew the rotation.
    RoundRobin,
    /// Follow the producing cluster of the first physical source operand
    /// (falling back to round-robin for instructions with no in-flight
    /// producer), trading load balance for fewer cross-cluster forwards.
    DependenceAffinity,
    /// Route predicted-dead instructions to the designated cheap cluster
    /// (the highest-numbered one); live instructions rotate over the
    /// remaining clusters. With elimination enabled, predicted-dead
    /// instructions are squashed pre-dispatch instead of steered.
    DeadSteer,
}

impl SteerPolicy {
    /// The axis value as written in records and flags.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SteerPolicy::RoundRobin => "rr",
            SteerPolicy::DependenceAffinity => "affinity",
            SteerPolicy::DeadSteer => "dead",
        }
    }

    /// Parses one `--steer` flag value.
    ///
    /// # Errors
    ///
    /// Returns a one-line message for anything but `rr`, `affinity`, `dead`.
    pub fn parse(value: &str) -> Result<SteerPolicy, String> {
        match value {
            "rr" => Ok(SteerPolicy::RoundRobin),
            "affinity" => Ok(SteerPolicy::DependenceAffinity),
            "dead" => Ok(SteerPolicy::DeadSteer),
            other => Err(format!("invalid --steer `{other}` (expected rr, affinity or dead)")),
        }
    }
}

/// Clustered-backend configuration: the issue queue and function units are
/// partitioned into `clusters` slices, and a value produced in one cluster
/// becomes visible to consumers in another only `bypass_penalty` cycles
/// after its local writeback (DESIGN.md §11). Memory ordering (LSQ) and
/// the register-file storage itself stay global; only operand *forwarding*
/// pays the inter-cluster penalty.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClusterConfig {
    /// Execution clusters (1..=8). Each gets `iq_entries / clusters` issue
    /// slots and `fu / clusters` function units (floored, minimum one).
    pub clusters: usize,
    /// Extra cycles before a result produced in one cluster can wake
    /// consumers waiting in another (0 = an ideal global bypass network).
    pub bypass_penalty: u32,
    /// Dispatch-time steering policy.
    pub steer: SteerPolicy,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig { clusters: 2, bypass_penalty: 2, steer: SteerPolicy::RoundRobin }
    }
}

/// Full machine configuration (defaults are DESIGN.md §4's baseline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Instructions fetched per cycle.
    pub fetch_width: usize,
    /// Instructions renamed/dispatched per cycle.
    pub rename_width: usize,
    /// Instructions issued to function units per cycle.
    pub issue_width: usize,
    /// Instructions committed per cycle.
    pub commit_width: usize,
    /// Reorder-buffer entries.
    pub rob_entries: usize,
    /// Issue-queue entries.
    pub iq_entries: usize,
    /// Load-queue entries.
    pub lq_entries: usize,
    /// Store-queue entries.
    pub sq_entries: usize,
    /// Physical registers (must exceed the 32 architectural ones).
    pub phys_regs: usize,
    /// Frontend depth: cycles from fetch to rename readiness.
    pub frontend_depth: u32,
    /// Fetch-buffer capacity in instructions.
    pub fetch_buffer: usize,
    /// Extra redirect cycles after a mispredicted branch resolves.
    pub mispredict_penalty: u32,
    /// Fetch bubble cycles for a taken branch whose target missed the BTB.
    pub btb_miss_penalty: u32,
    /// Function units.
    pub fu: FuConfig,
    /// gshare global-history bits.
    pub gshare_history_bits: u32,
    /// log2 of gshare table entries.
    pub gshare_log2_entries: u32,
    /// Return-address-stack depth.
    pub ras_depth: usize,
    /// Cache hierarchy.
    pub hierarchy: HierarchyConfig,
    /// Dead-instruction elimination (policy `Off` for the baseline).
    pub dead: DeadElimConfig,
    /// Clustered backend (`None` = the classic unified backend).
    pub cluster: Option<ClusterConfig>,
}

impl PipelineConfig {
    /// The paper-scale baseline machine: 4-wide, 128-entry ROB, 160
    /// physical registers — resources generous enough that contention is
    /// mild.
    #[must_use]
    pub fn baseline() -> PipelineConfig {
        PipelineConfig {
            fetch_width: 4,
            rename_width: 4,
            issue_width: 4,
            commit_width: 4,
            rob_entries: 128,
            iq_entries: 64,
            lq_entries: 32,
            sq_entries: 32,
            phys_regs: 160,
            frontend_depth: 3,
            fetch_buffer: 32,
            mispredict_penalty: 14,
            btb_miss_penalty: 2,
            fu: FuConfig::default(),
            gshare_history_bits: 10,
            gshare_log2_entries: 12,
            ras_depth: 16,
            hierarchy: HierarchyConfig::default(),
            dead: DeadElimConfig { policy: EliminationPolicy::Off, ..DeadElimConfig::default() },
            cluster: None,
        }
    }

    /// The paper's "architecture exhibiting resource contention": the same
    /// frontend with a tight physical register file, a small issue queue,
    /// fewer ALUs and a single memory port. This is where elimination buys
    /// measurable IPC (experiment E9).
    #[must_use]
    pub fn contended() -> PipelineConfig {
        PipelineConfig {
            phys_regs: 48,
            iq_entries: 16,
            rob_entries: 64,
            lq_entries: 8,
            sq_entries: 8,
            fu: FuConfig { alus: 2, mem_ports: 1, ..FuConfig::default() },
            ..PipelineConfig::baseline()
        }
    }

    /// The contended machine with its backend split into clusters: the
    /// same global resources, partitioned, plus an inter-cluster bypass
    /// penalty. The `dide run/stats/campaign` `clustered` machine axis.
    #[must_use]
    pub fn clustered(cluster: ClusterConfig) -> PipelineConfig {
        PipelineConfig { cluster: Some(cluster), ..PipelineConfig::contended() }
    }

    /// Returns the configuration with the given elimination settings.
    #[must_use]
    pub fn with_elimination(mut self, dead: DeadElimConfig) -> PipelineConfig {
        self.dead = dead;
        self
    }

    /// Returns the configuration with the given clustered backend.
    #[must_use]
    pub fn with_cluster(mut self, cluster: ClusterConfig) -> PipelineConfig {
        self.cluster = Some(cluster);
        self
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if widths are zero, the physical register file cannot cover
    /// the architectural registers, or queues are empty.
    pub fn validate(&self) {
        assert!(self.fetch_width > 0 && self.rename_width > 0, "widths must be positive");
        assert!(self.issue_width > 0 && self.commit_width > 0, "widths must be positive");
        assert!(
            self.phys_regs > dide_isa::Reg::COUNT,
            "need more than {} physical registers",
            dide_isa::Reg::COUNT
        );
        assert!(self.rob_entries > 0 && self.iq_entries > 0, "queues must be non-empty");
        assert!(self.lq_entries > 0 && self.sq_entries > 0, "queues must be non-empty");
        assert!(self.fetch_buffer >= self.fetch_width, "fetch buffer too small");
        assert!(self.fu.alus > 0 && self.fu.mem_ports > 0, "need ALUs and memory ports");
        assert!(self.fu.muls > 0 && self.fu.divs > 0, "need multiplier and divider");
        if let Some(cluster) = self.cluster {
            assert!(
                (1..=8).contains(&cluster.clusters),
                "need 1..=8 execution clusters, got {}",
                cluster.clusters
            );
            // Per-cluster IQ slices are floored at one entry, so a slice
            // can only exceed the bitmap cap when the global queue does.
            assert!(
                self.iq_entries.div_euclid(cluster.clusters).max(1) <= 64,
                "per-cluster issue-queue slice capped at 64 entries"
            );
        }
    }
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_validates() {
        PipelineConfig::baseline().validate();
        PipelineConfig::contended().validate();
    }

    #[test]
    fn contended_is_tighter() {
        let b = PipelineConfig::baseline();
        let c = PipelineConfig::contended();
        assert!(c.phys_regs < b.phys_regs);
        assert!(c.iq_entries < b.iq_entries);
        assert!(c.fu.alus < b.fu.alus);
        assert!(c.fu.mem_ports < b.fu.mem_ports);
    }

    #[test]
    fn with_elimination_sets_policy() {
        let cfg = PipelineConfig::baseline().with_elimination(DeadElimConfig::default());
        assert_eq!(cfg.dead.policy, EliminationPolicy::RegAndStore);
        assert!(cfg.dead.policy.enabled());
        assert!(cfg.dead.policy.covers_stores());
        assert!(!EliminationPolicy::RegOnly.covers_stores());
        assert!(EliminationPolicy::RegOnly.covers_registers());
        assert!(EliminationPolicy::StoreOnly.covers_stores());
        assert!(!EliminationPolicy::StoreOnly.covers_registers());
        assert!(!EliminationPolicy::Off.enabled());
        assert!(!EliminationPolicy::Off.covers_stores());
        assert!(!EliminationPolicy::Off.covers_registers());
    }

    #[test]
    #[should_panic(expected = "physical registers")]
    fn too_few_phys_regs_panics() {
        let mut cfg = PipelineConfig::baseline();
        cfg.phys_regs = 32;
        cfg.validate();
    }

    #[test]
    fn clustered_validates_and_keeps_contended_resources() {
        let cfg = PipelineConfig::clustered(ClusterConfig::default());
        cfg.validate();
        let contended = PipelineConfig::contended();
        assert_eq!(cfg.iq_entries, contended.iq_entries);
        assert_eq!(cfg.fu, contended.fu);
        assert_eq!(cfg.cluster, Some(ClusterConfig::default()));
        for n in 1..=8 {
            PipelineConfig::clustered(ClusterConfig { clusters: n, ..ClusterConfig::default() })
                .validate();
        }
    }

    #[test]
    #[should_panic(expected = "execution clusters")]
    fn too_many_clusters_panics() {
        PipelineConfig::clustered(ClusterConfig { clusters: 9, ..ClusterConfig::default() })
            .validate();
    }

    #[test]
    fn steer_policy_labels_roundtrip() {
        for policy in
            [SteerPolicy::RoundRobin, SteerPolicy::DependenceAffinity, SteerPolicy::DeadSteer]
        {
            assert_eq!(SteerPolicy::parse(policy.label()), Ok(policy));
        }
        assert!(SteerPolicy::parse("nope").unwrap_err().contains("--steer"));
    }
}
