//! Function-unit pool.

use dide_isa::{Opcode, OpcodeKind};

use crate::config::FuConfig;

/// Function-unit class an instruction executes on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum FuClass {
    /// Single-cycle integer ALU (also branches, jumps, `out`).
    Alu,
    /// Pipelined multiplier.
    Mul,
    /// Unpipelined divider.
    Div,
    /// Memory port (loads and stores).
    Mem,
}

/// Classifies an opcode onto a function unit.
pub(crate) fn classify(op: Opcode) -> FuClass {
    match op.kind() {
        OpcodeKind::Load { .. } | OpcodeKind::Store { .. } => FuClass::Mem,
        _ => match op {
            Opcode::Mul => FuClass::Mul,
            Opcode::Div | Opcode::Rem => FuClass::Div,
            _ => FuClass::Alu,
        },
    }
}

/// Per-cycle function-unit availability.
///
/// ALUs, multipliers and memory ports are fully pipelined (an issue slot
/// per cycle each); the divider blocks until its operation completes.
#[derive(Debug, Clone)]
pub(crate) struct FuPool {
    config: FuConfig,
    alu_used: usize,
    mul_used: usize,
    mem_used: usize,
    div_busy_until: u64,
}

impl FuPool {
    pub(crate) fn new(config: FuConfig) -> FuPool {
        FuPool { config, alu_used: 0, mul_used: 0, mem_used: 0, div_busy_until: 0 }
    }

    /// Resets per-cycle issue slots.
    pub(crate) fn begin_cycle(&mut self) {
        self.alu_used = 0;
        self.mul_used = 0;
        self.mem_used = 0;
    }

    /// Whether a unit of `class` could be claimed at `cycle`, without
    /// claiming it. Lets the select loop skip per-entry issue checks (LSQ
    /// disambiguation probes) once a class is exhausted this cycle.
    pub(crate) fn can_issue(&self, class: FuClass, cycle: u64) -> bool {
        match class {
            FuClass::Alu => self.alu_used < self.config.alus,
            FuClass::Mul => self.mul_used < self.config.muls,
            FuClass::Div => cycle >= self.div_busy_until,
            FuClass::Mem => self.mem_used < self.config.mem_ports,
        }
    }

    /// Attempts to claim a unit of `class` at `cycle`; returns the
    /// operation's base execution latency on success.
    pub(crate) fn try_issue(&mut self, class: FuClass, cycle: u64) -> Option<u32> {
        match class {
            FuClass::Alu => {
                if self.alu_used < self.config.alus {
                    self.alu_used += 1;
                    Some(1)
                } else {
                    None
                }
            }
            FuClass::Mul => {
                if self.mul_used < self.config.muls {
                    self.mul_used += 1;
                    Some(self.config.mul_latency)
                } else {
                    None
                }
            }
            FuClass::Div => {
                if cycle >= self.div_busy_until {
                    self.div_busy_until = cycle + u64::from(self.config.div_latency);
                    Some(self.config.div_latency)
                } else {
                    None
                }
            }
            FuClass::Mem => {
                if self.mem_used < self.config.mem_ports {
                    self.mem_used += 1;
                    Some(1)
                } else {
                    None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_by_opcode() {
        assert_eq!(classify(Opcode::Add), FuClass::Alu);
        assert_eq!(classify(Opcode::Beq), FuClass::Alu);
        assert_eq!(classify(Opcode::Mul), FuClass::Mul);
        assert_eq!(classify(Opcode::Div), FuClass::Div);
        assert_eq!(classify(Opcode::Rem), FuClass::Div);
        assert_eq!(classify(Opcode::Ld), FuClass::Mem);
        assert_eq!(classify(Opcode::Sd), FuClass::Mem);
        assert_eq!(classify(Opcode::Out), FuClass::Alu);
    }

    #[test]
    fn alu_slots_limit_per_cycle() {
        let mut pool = FuPool::new(FuConfig { alus: 2, ..FuConfig::default() });
        pool.begin_cycle();
        assert!(pool.try_issue(FuClass::Alu, 0).is_some());
        assert!(pool.try_issue(FuClass::Alu, 0).is_some());
        assert!(pool.try_issue(FuClass::Alu, 0).is_none());
        pool.begin_cycle();
        assert!(pool.try_issue(FuClass::Alu, 1).is_some());
    }

    #[test]
    fn divider_blocks_until_done() {
        let mut pool = FuPool::new(FuConfig { div_latency: 12, ..FuConfig::default() });
        pool.begin_cycle();
        assert_eq!(pool.try_issue(FuClass::Div, 0), Some(12));
        pool.begin_cycle();
        assert!(pool.try_issue(FuClass::Div, 1).is_none());
        assert!(pool.try_issue(FuClass::Div, 11).is_none());
        assert_eq!(pool.try_issue(FuClass::Div, 12), Some(12));
    }

    #[test]
    fn mul_latency_reported() {
        let mut pool = FuPool::new(FuConfig { mul_latency: 3, ..FuConfig::default() });
        pool.begin_cycle();
        assert_eq!(pool.try_issue(FuClass::Mul, 0), Some(3));
    }
}
