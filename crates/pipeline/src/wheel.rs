//! Completion event wheel: execution completions keyed by cycle.
//!
//! The pre-rework writeback stage kept pending completions in a flat `Vec`
//! and scan-and-`swap_remove`d the due ones every cycle — O(in-flight) per
//! cycle, and with a *tie order for same-cycle completions that depended
//! on prior removal history*. This queue is a calendar wheel: a power-of-
//! two ring of buckets indexed by `cycle & mask`, plus an occupancy
//! bitmask over the buckets.
//!
//! * the per-cycle drain check is a single bit test ([`CompletionQueue::
//!   pop_due`]), and draining touches only due events;
//! * same-cycle completions drain in **ascending sequence order**, a
//!   defined, insertion-order-independent tie-break (the per-completion
//!   writeback actions — ROB complete, ready-bit set, store-executed mark,
//!   branch resolve — commute architecturally, so this pinning keeps all
//!   goldens byte-identical while making the order reproducible). Buckets
//!   are kept sorted by descending seq, so popping from the back yields
//!   ascending seq;
//! * [`CompletionQueue::next_cycle`] is a short bitmask scan, which is
//!   what lets the cycle loop skip ahead over stretches of cycles where
//!   nothing completes.
//!
//! A binary heap was tried first and measurably lost: every push and pop
//! pays O(log n) branchy comparisons, while in-flight lifetimes are
//! bounded by the execution latencies (≲ 100 cycles for a worst-case
//! memory access), so a modest ring indexes every pending event directly.
//! If a configuration ever schedules past the horizon, the wheel grows to
//! the next power of two that fits.

use crate::regfile::PhysReg;

/// A scheduled execution completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Completion {
    /// Cycle at which the result becomes available.
    pub(crate) cycle: u64,
    /// Completing instruction's dynamic sequence number.
    pub(crate) seq: u64,
    /// Destination physical register to mark ready, if any.
    pub(crate) dest: Option<PhysReg>,
    /// Whether the completion marks a store's address/data as known.
    pub(crate) is_store: bool,
}

/// Covers the deepest default pipeline latency (a through-memory load)
/// with room to spare.
const MIN_BUCKETS: usize = 256;

/// Min-queue of pending completions, draining in `(cycle, seq)` order.
///
/// The caller drains with `pop_due(now)` at every cycle it visits and
/// never jumps `now` past [`CompletionQueue::next_cycle`], so all pending
/// completions lie in `(cursor, cursor + buckets.len()]`.
#[derive(Debug, Clone)]
pub(crate) struct CompletionQueue {
    /// Ring of buckets indexed by `cycle & mask`, each sorted by
    /// descending seq.
    buckets: Vec<Vec<Completion>>,
    /// One bit per bucket: non-empty.
    occupied: Vec<u64>,
    mask: u64,
    /// All cycles `<= cursor` have been fully drained.
    cursor: u64,
    len: usize,
}

impl Default for CompletionQueue {
    fn default() -> CompletionQueue {
        CompletionQueue::with_buckets(MIN_BUCKETS)
    }
}

impl CompletionQueue {
    pub(crate) fn new() -> CompletionQueue {
        CompletionQueue::default()
    }

    fn with_buckets(n: usize) -> CompletionQueue {
        debug_assert!(n.is_power_of_two() && n >= 64);
        CompletionQueue {
            buckets: vec![Vec::new(); n],
            occupied: vec![0; n / 64],
            mask: n as u64 - 1,
            cursor: 0,
            len: 0,
        }
    }

    /// Schedules a completion. `c.cycle` must be beyond the last fully
    /// drained cycle.
    #[inline(always)]
    pub(crate) fn push(&mut self, c: Completion) {
        debug_assert!(c.cycle > self.cursor, "completion scheduled into the past");
        if c.cycle - self.cursor > self.buckets.len() as u64 {
            self.grow(c.cycle);
        }
        let b = (c.cycle & self.mask) as usize;
        let bucket = &mut self.buckets[b];
        let pos = bucket.partition_point(|e| e.seq > c.seq);
        bucket.insert(pos, c);
        self.occupied[b / 64] |= 1 << (b % 64);
        self.len += 1;
    }

    /// Pops the oldest completion due at `now`, if any. Repeated calls
    /// drain a cycle's completions in ascending sequence order; a `None`
    /// return marks `now` as fully drained.
    #[inline(always)]
    pub(crate) fn pop_due(&mut self, now: u64) -> Option<Completion> {
        let b = (now & self.mask) as usize;
        if self.occupied[b / 64] & (1 << (b % 64)) == 0 {
            if now > self.cursor {
                self.cursor = now;
            }
            return None;
        }
        let bucket = &mut self.buckets[b];
        debug_assert_eq!(bucket.last().map(|c| c.cycle), Some(now), "bucket alias");
        let c = bucket.pop().expect("occupied bucket is non-empty");
        if bucket.is_empty() {
            self.occupied[b / 64] &= !(1 << (b % 64));
        }
        self.len -= 1;
        Some(c)
    }

    /// Cycle of the earliest pending completion (the skip-ahead bound).
    pub(crate) fn next_cycle(&self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        let n = self.buckets.len();
        let start = ((self.cursor + 1) & self.mask) as usize;
        let mut word = start / 64;
        let mut bits = self.occupied[word] & !((1u64 << (start % 64)) - 1);
        for _ in 0..=n / 64 {
            if bits != 0 {
                let b = word * 64 + bits.trailing_zeros() as usize;
                let delta = (b + n - start) & (n - 1);
                return Some(self.cursor + 1 + delta as u64);
            }
            word = (word + 1) % (n / 64);
            bits = self.occupied[word];
        }
        unreachable!("len > 0 but no occupied bucket");
    }

    /// Re-homes every pending completion into a ring large enough that
    /// `cycle` is within the horizon.
    fn grow(&mut self, cycle: u64) {
        let need = (cycle - self.cursor).next_power_of_two() as usize;
        let mut bigger = CompletionQueue::with_buckets(need.max(2 * self.buckets.len()));
        bigger.cursor = self.cursor;
        for bucket in &self.buckets {
            for &c in bucket {
                bigger.push(c);
            }
        }
        *self = bigger;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn completion(cycle: u64, seq: u64) -> Completion {
        Completion { cycle, seq, dest: None, is_store: seq.is_multiple_of(2) }
    }

    fn drain_all(q: &mut CompletionQueue) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut now = 0;
        loop {
            while let Some(c) = q.pop_due(now) {
                out.push((c.cycle, c.seq));
            }
            match q.next_cycle() {
                Some(next) => now = next,
                None => return out,
            }
        }
    }

    #[test]
    fn drains_by_cycle_then_seq() {
        let mut q = CompletionQueue::new();
        for (cycle, seq) in [(5, 9), (3, 4), (5, 2), (3, 1), (8, 7)] {
            q.push(completion(cycle, seq));
        }
        assert_eq!(q.next_cycle(), Some(3));
        assert_eq!(drain_all(&mut q), [(3, 1), (3, 4), (5, 2), (5, 9), (8, 7)]);
    }

    #[test]
    fn nothing_due_before_its_cycle() {
        let mut q = CompletionQueue::new();
        q.push(completion(4, 0));
        assert!(q.pop_due(3).is_none());
        assert!(q.pop_due(4).is_some());
        assert!(q.pop_due(5).is_none());
        assert_eq!(q.next_cycle(), None);
    }

    #[test]
    fn wraps_and_grows_past_the_horizon() {
        let mut q = CompletionQueue::new();
        // March far enough that bucket indices wrap the ring several
        // times, with events spaced near the horizon.
        let mut now = 0u64;
        for round in 0..40u64 {
            let cycle = now + 90 + (round % 13);
            q.push(completion(cycle, round));
            while q.pop_due(now).is_none() && q.next_cycle().is_some() {
                now = q.next_cycle().unwrap();
            }
            assert_eq!(q.next_cycle(), None, "drained round {round}");
        }
        // A completion beyond the ring forces growth and survives it.
        q.push(completion(now + 5, 1000));
        q.push(completion(now + 10_000, 1001));
        assert_eq!(q.next_cycle(), Some(now + 5));
        assert_eq!(drain_all_from(&mut q, now), [(now + 5, 1000), (now + 10_000, 1001)]);
    }

    fn drain_all_from(q: &mut CompletionQueue, mut now: u64) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        loop {
            while let Some(c) = q.pop_due(now) {
                out.push((c.cycle, c.seq));
            }
            match q.next_cycle() {
                Some(next) => now = next,
                None => return out,
            }
        }
    }

    #[test]
    fn every_insertion_permutation_drains_identically() {
        // The satellite bugfix this queue locks in: same-cycle completion
        // order must not depend on insertion (previously removal) history.
        // All 720 permutations of a set with two same-cycle tie groups must
        // drain in one canonical (cycle, seq) order.
        let events = [(2u64, 3u64), (2, 8), (2, 5), (7, 1), (7, 6), (9, 0)];
        let canonical = {
            let mut q = CompletionQueue::new();
            for &(c, s) in &events {
                q.push(completion(c, s));
            }
            drain_all(&mut q)
        };
        let mut expected = events.to_vec();
        expected.sort_unstable();
        assert_eq!(canonical, expected, "drain order is ascending (cycle, seq)");

        // Heap's algorithm, iteratively: deterministic enumeration of all
        // n! orders without any randomness.
        let mut perm = events;
        let mut counters = [0usize; 6];
        let mut i = 0;
        let mut checked = 1u32;
        while i < perm.len() {
            if counters[i] < i {
                if i % 2 == 0 {
                    perm.swap(0, i);
                } else {
                    perm.swap(counters[i], i);
                }
                let mut q = CompletionQueue::new();
                for &(c, s) in &perm {
                    q.push(completion(c, s));
                }
                assert_eq!(drain_all(&mut q), canonical, "permutation {perm:?} diverged");
                checked += 1;
                counters[i] += 1;
                i = 0;
            } else {
                counters[i] = 0;
                i += 1;
            }
        }
        assert_eq!(checked, 720, "visited every permutation");
    }
}
