//! Physical register file with a free list and a ready bitset.

/// Index of a physical register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct PhysReg(pub(crate) u16);

/// The physical register file: a free list plus a per-register ready
/// bitset (one bit per register, packed into `u64` words so readiness
/// tests are an index + mask).
///
/// The first 32 physical registers are pre-allocated to the architectural
/// registers at reset and marked ready; the remainder form the free list.
/// Rename stalls when the free list is empty — the contention that
/// dead-instruction elimination relieves (experiment E9).
#[derive(Debug, Clone)]
pub(crate) struct PhysRegFile {
    free: Vec<PhysReg>,
    /// Ready bits, 64 registers per word.
    ready: Vec<u64>,
}

impl PhysRegFile {
    /// Creates a register file with `total` physical registers, the first
    /// `reserved` of which are pre-allocated and ready.
    pub(crate) fn new(total: usize, reserved: usize) -> PhysRegFile {
        assert!(total > reserved, "need more than {reserved} physical registers");
        assert!(total <= u16::MAX as usize, "physical register file too large");
        let free = (reserved..total).rev().map(|i| PhysReg(i as u16)).collect();
        let mut ready = vec![0u64; total.div_ceil(64)];
        for i in 0..reserved {
            ready[i / 64] |= 1 << (i % 64);
        }
        PhysRegFile { free, ready }
    }

    /// Allocates a register (not ready), or `None` if the free list is
    /// empty.
    pub(crate) fn alloc(&mut self) -> Option<PhysReg> {
        let p = self.free.pop()?;
        self.ready[p.0 as usize / 64] &= !(1 << (p.0 as usize % 64));
        Some(p)
    }

    /// Returns a register to the free list.
    pub(crate) fn free(&mut self, p: PhysReg) {
        debug_assert!(!self.free.contains(&p), "double free of physical register {p:?}");
        self.free.push(p);
    }

    /// Marks a register's value as available.
    pub(crate) fn set_ready(&mut self, p: PhysReg) {
        self.ready[p.0 as usize / 64] |= 1 << (p.0 as usize % 64);
    }

    /// Whether a register's value is available.
    pub(crate) fn is_ready(&self, p: PhysReg) -> bool {
        self.ready[p.0 as usize / 64] & (1 << (p.0 as usize % 64)) != 0
    }

    /// Registers currently on the free list.
    pub(crate) fn free_count(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_free_cycle() {
        let mut rf = PhysRegFile::new(40, 32);
        assert_eq!(rf.free_count(), 8);
        let p = rf.alloc().unwrap();
        assert!(!rf.is_ready(p));
        rf.set_ready(p);
        assert!(rf.is_ready(p));
        rf.free(p);
        assert_eq!(rf.free_count(), 8);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut rf = PhysRegFile::new(34, 32);
        assert!(rf.alloc().is_some());
        assert!(rf.alloc().is_some());
        assert!(rf.alloc().is_none());
    }

    #[test]
    fn exhaustion_then_recycle_reuses_freed_registers() {
        let mut rf = PhysRegFile::new(36, 32);
        let held: Vec<PhysReg> = std::iter::from_fn(|| rf.alloc()).collect();
        assert_eq!(held.len(), 4);
        assert_eq!(rf.free_count(), 0);
        assert!(rf.alloc().is_none(), "exhausted free list must stay empty");
        // Mark values available, then recycle two registers: the free list
        // is LIFO, so the last one freed comes back first, not ready.
        for &p in &held {
            rf.set_ready(p);
        }
        rf.free(held[0]);
        rf.free(held[1]);
        assert_eq!(rf.free_count(), 2);
        let recycled = rf.alloc().unwrap();
        assert_eq!(recycled, held[1]);
        assert!(!rf.is_ready(recycled), "recycled register must drop its stale ready bit");
        assert_eq!(rf.alloc().unwrap(), held[0]);
        assert!(rf.alloc().is_none(), "back to exhausted after recycling both");
    }

    #[test]
    fn reserved_registers_start_ready() {
        let rf = PhysRegFile::new(40, 32);
        for i in 0..32 {
            assert!(rf.is_ready(PhysReg(i)));
        }
    }

    #[test]
    fn ready_bits_straddle_word_boundaries() {
        // Registers 63/64 and 127/128 sit on either side of the packed u64
        // word edges; setting an edge bit must not alias its neighbors.
        let mut rf = PhysRegFile::new(160, 32);
        while rf.alloc().is_some() {} // registers 32..160 all allocated, not ready
        for edge in [63u16, 64, 127, 128] {
            assert!(!rf.is_ready(PhysReg(edge)), "register {edge} starts not ready");
            rf.set_ready(PhysReg(edge));
            assert!(rf.is_ready(PhysReg(edge)));
        }
        for neighbor in [62u16, 65, 126, 129] {
            assert!(!rf.is_ready(PhysReg(neighbor)), "edge bits must not leak to {neighbor}");
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "double free")]
    fn double_free_caught_in_debug() {
        let mut rf = PhysRegFile::new(34, 32);
        let p = rf.alloc().unwrap();
        rf.free(p);
        rf.free(p);
    }
}
