//! The register rename map, including dead-tag mappings.

use dide_isa::Reg;

use crate::regfile::PhysReg;

/// What an architectural register currently maps to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Mapping {
    /// A physical register holding (or about to hold) the value.
    Phys(PhysReg),
    /// The value was produced by an *eliminated* (predicted-dead)
    /// instruction with this sequence number and does not exist. Reading
    /// this mapping is a dead-prediction violation.
    Dead(u64),
}

/// Architectural-to-physical register map.
#[derive(Debug, Clone)]
pub(crate) struct RenameMap {
    map: [Mapping; Reg::COUNT],
}

impl RenameMap {
    /// Identity-maps the architectural registers onto the first 32 physical
    /// registers.
    pub(crate) fn new() -> RenameMap {
        let mut map = [Mapping::Phys(PhysReg(0)); Reg::COUNT];
        for (i, m) in map.iter_mut().enumerate() {
            *m = Mapping::Phys(PhysReg(i as u16));
        }
        RenameMap { map }
    }

    /// Current mapping of `r`.
    ///
    /// The zero register never appears here: [`dide_isa::Inst::sources`]
    /// and [`dide_isa::Inst::dest`] filter it out.
    pub(crate) fn get(&self, r: Reg) -> Mapping {
        debug_assert!(!r.is_zero(), "zero register is never renamed");
        self.map[r.index()]
    }

    /// Rebinds `r`, returning the previous mapping (to be freed when the
    /// new binding commits).
    pub(crate) fn set(&mut self, r: Reg, m: Mapping) -> Mapping {
        debug_assert!(!r.is_zero(), "zero register is never renamed");
        std::mem::replace(&mut self.map[r.index()], m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_at_reset() {
        let m = RenameMap::new();
        assert_eq!(m.get(Reg::T0), Mapping::Phys(PhysReg(Reg::T0.number() as u16)));
    }

    #[test]
    fn set_returns_previous() {
        let mut m = RenameMap::new();
        let prev = m.set(Reg::T0, Mapping::Dead(42));
        assert_eq!(prev, Mapping::Phys(PhysReg(10)));
        assert_eq!(m.get(Reg::T0), Mapping::Dead(42));
        let prev = m.set(Reg::T0, Mapping::Phys(PhysReg(50)));
        assert_eq!(prev, Mapping::Dead(42));
    }
}
