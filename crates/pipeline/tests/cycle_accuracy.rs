//! Cycle-accuracy pins: hand-built micro-traces with known exact cycle
//! counts, asserted before the simulate-phase hot-path rework and kept
//! green through it. These pin the model at *cycle* granularity — an
//! off-by-one in writeback ordering, idle-cycle skip-ahead, or issue
//! select shows up here even when end-to-end benchmark stats still agree.
//!
//! The exact constants were recorded from the pre-rework cycle loop (the
//! per-cycle linear-scan implementation); every relative assertion below
//! explains *why* the counts relate the way they do, so a legitimate model
//! change (as opposed to a rework bug) is distinguishable.

use dide_analysis::DeadnessAnalysis;
use dide_emu::{Emulator, Trace};
use dide_isa::{ProgramBuilder, Reg};
use dide_pipeline::{Core, PipelineConfig, PipelineStats};

fn run(trace: &Trace, config: PipelineConfig) -> PipelineStats {
    let analysis = DeadnessAnalysis::analyze(trace);
    Core::new(config).run(trace, &analysis)
}

/// A loop whose body is a chain of `body` serially dependent `addi`s (the
/// chain value carries across iterations, so issue fully serializes); the
/// loop warms the I-cache and branch predictor, isolating wakeup/select
/// timing from cold-fetch effects.
fn dep_chain_loop(body: usize, iters: i64) -> Trace {
    let mut b = ProgramBuilder::new("chain");
    b.li(Reg::T0, 0);
    b.li(Reg::T1, iters);
    b.li(Reg::T2, 0);
    let top = b.label();
    b.bind(top);
    for _ in 0..body {
        b.addi(Reg::T2, Reg::T2, 1);
    }
    b.addi(Reg::T0, Reg::T0, 1);
    b.blt(Reg::T0, Reg::T1, top);
    b.out(Reg::T2);
    b.halt();
    Emulator::new(&b.build().unwrap()).run().unwrap()
}

/// A loop whose body is `body` *independent* single-cycle ALU ops (all
/// reading the stable `S0`), so throughput is capped by issue width once
/// the I-cache and branch predictor are warm.
fn independent_alus_loop(body: usize, iters: i64) -> Trace {
    let mut b = ProgramBuilder::new("wide");
    b.li(Reg::S0, 7);
    b.li(Reg::T0, 0);
    b.li(Reg::T1, iters);
    let top = b.label();
    b.bind(top);
    for i in 0..body {
        b.addi(Reg::TEMPS[2 + i % 6], Reg::S0, i as i64);
    }
    b.addi(Reg::T0, Reg::T0, 1);
    b.blt(Reg::T0, Reg::T1, top);
    b.halt();
    Emulator::new(&b.build().unwrap()).run().unwrap()
}

/// A store at `SP-8` followed by a load of the same (or a disjoint)
/// address, then a consumer of the loaded value.
fn store_then_load(overlapping: bool) -> Trace {
    let mut b = ProgramBuilder::new("stld");
    b.li(Reg::T0, 99);
    b.sd(Reg::T0, Reg::SP, -8);
    b.ld(Reg::T1, Reg::SP, if overlapping { -8 } else { -16 });
    b.addi(Reg::T2, Reg::T1, 1);
    b.out(Reg::T2);
    b.halt();
    Emulator::new(&b.build().unwrap()).run().unwrap()
}

/// A blocking 12-cycle divide at the ROB head, then `k` independent adds
/// that must all wait for commit space behind it.
fn div_then_adds(k: usize) -> Trace {
    let mut b = ProgramBuilder::new("robfull");
    b.li(Reg::T0, 144);
    b.li(Reg::T1, 12);
    b.div(Reg::T2, Reg::T0, Reg::T1);
    for i in 0..k {
        b.addi(Reg::TEMPS[3 + i % 4], Reg::S0, i as i64);
    }
    b.out(Reg::T2);
    b.halt();
    Emulator::new(&b.build().unwrap()).run().unwrap()
}

#[test]
fn single_dependency_chain_is_cycle_exact() {
    let short = run(&dep_chain_loop(8, 50), PipelineConfig::baseline());
    let long = run(&dep_chain_loop(16, 50), PipelineConfig::baseline());
    assert_eq!(short.cycles, 499, "8-link chain body cycles");
    assert_eq!(long.cycles, 981, "16-link chain body cycles");
    // The chain value carries across iterations, so every extra link costs
    // at least one cycle per iteration (8 extra links × 50 iterations =
    // 400 cycles, plus the occasional fetch bubble on the longer body).
    assert!(long.cycles - short.cycles >= 400, "one cycle per link per iteration");
}

#[test]
fn issue_width_saturation_is_cycle_exact() {
    let w4 = run(&independent_alus_loop(12, 50), PipelineConfig::baseline());
    assert_eq!(w4.cycles, 411, "4-wide cycles");
    let mut narrow = PipelineConfig::baseline();
    narrow.issue_width = 1;
    let w1 = run(&independent_alus_loop(12, 50), narrow);
    assert_eq!(w1.cycles, 900, "1-wide cycles");
    // A warm loop of independent ALU ops is issue-width-bound: ~14 ops per
    // iteration need ≥14 cycles at width 1 but ~4 at width 4.
    assert!(w1.cycles > 2 * w4.cycles, "1-wide must be at least 2x slower");
}

#[test]
fn load_blocked_on_overlapping_store_is_cycle_exact() {
    let blocked = run(&store_then_load(true), PipelineConfig::baseline());
    let free = run(&store_then_load(false), PipelineConfig::baseline());
    assert_eq!(blocked.cycles, 105, "overlapping store+load cycles");
    assert_eq!(free.cycles, 195, "disjoint store+load cycles");
    // The overlapping load waits for the store to execute, then forwards
    // (fixed 2-cycle latency, no memory round-trip); the disjoint load
    // issues immediately alongside the store but pays the L1D cold miss
    // the forwarded load avoids, so the *disjoint* variant is slower here.
    assert!(free.cycles > blocked.cycles);
}

#[test]
fn rob_full_stall_is_cycle_exact() {
    let mut tiny = PipelineConfig::baseline();
    tiny.rob_entries = 4;
    let stats = run(&div_then_adds(32), tiny);
    assert_eq!(stats.cycles, 292, "tiny-ROB div cycles");
    assert!(stats.rob_full_stalls > 0, "the divide must back the 4-entry ROB up into rename");
    // The same program on the 128-entry baseline ROB never stalls rename.
    let roomy = run(&div_then_adds(32), PipelineConfig::baseline());
    assert_eq!(roomy.cycles, 291, "baseline-ROB div cycles");
    assert_eq!(roomy.rob_full_stalls, 0);
    assert!(stats.cycles > roomy.cycles, "backpressure must cost cycles");
}
