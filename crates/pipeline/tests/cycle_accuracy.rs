//! Cycle-accuracy pins: hand-built micro-traces with known exact cycle
//! counts, asserted before the simulate-phase hot-path rework and kept
//! green through it. These pin the model at *cycle* granularity — an
//! off-by-one in writeback ordering, idle-cycle skip-ahead, or issue
//! select shows up here even when end-to-end benchmark stats still agree.
//!
//! The exact constants were recorded from the pre-rework cycle loop (the
//! per-cycle linear-scan implementation); every relative assertion below
//! explains *why* the counts relate the way they do, so a legitimate model
//! change (as opposed to a rework bug) is distinguishable.

use dide_analysis::DeadnessAnalysis;
use dide_emu::{Emulator, Trace};
use dide_isa::{ProgramBuilder, Reg};
use dide_pipeline::{Core, PipelineConfig, PipelineStats};

fn run(trace: &Trace, config: PipelineConfig) -> PipelineStats {
    let analysis = DeadnessAnalysis::analyze(trace);
    Core::new(config).run(trace, &analysis)
}

/// A loop whose body is a chain of `body` serially dependent `addi`s (the
/// chain value carries across iterations, so issue fully serializes); the
/// loop warms the I-cache and branch predictor, isolating wakeup/select
/// timing from cold-fetch effects.
fn dep_chain_loop(body: usize, iters: i64) -> Trace {
    let mut b = ProgramBuilder::new("chain");
    b.li(Reg::T0, 0);
    b.li(Reg::T1, iters);
    b.li(Reg::T2, 0);
    let top = b.label();
    b.bind(top);
    for _ in 0..body {
        b.addi(Reg::T2, Reg::T2, 1);
    }
    b.addi(Reg::T0, Reg::T0, 1);
    b.blt(Reg::T0, Reg::T1, top);
    b.out(Reg::T2);
    b.halt();
    Emulator::new(&b.build().unwrap()).run().unwrap()
}

/// A loop whose body is `body` *independent* single-cycle ALU ops (all
/// reading the stable `S0`), so throughput is capped by issue width once
/// the I-cache and branch predictor are warm.
fn independent_alus_loop(body: usize, iters: i64) -> Trace {
    let mut b = ProgramBuilder::new("wide");
    b.li(Reg::S0, 7);
    b.li(Reg::T0, 0);
    b.li(Reg::T1, iters);
    let top = b.label();
    b.bind(top);
    for i in 0..body {
        b.addi(Reg::TEMPS[2 + i % 6], Reg::S0, i as i64);
    }
    b.addi(Reg::T0, Reg::T0, 1);
    b.blt(Reg::T0, Reg::T1, top);
    b.halt();
    Emulator::new(&b.build().unwrap()).run().unwrap()
}

/// A store at `SP-8` followed by a load of the same (or a disjoint)
/// address, then a consumer of the loaded value.
fn store_then_load(overlapping: bool) -> Trace {
    let mut b = ProgramBuilder::new("stld");
    b.li(Reg::T0, 99);
    b.sd(Reg::T0, Reg::SP, -8);
    b.ld(Reg::T1, Reg::SP, if overlapping { -8 } else { -16 });
    b.addi(Reg::T2, Reg::T1, 1);
    b.out(Reg::T2);
    b.halt();
    Emulator::new(&b.build().unwrap()).run().unwrap()
}

/// A blocking 12-cycle divide at the ROB head, then `k` independent adds
/// that must all wait for commit space behind it.
fn div_then_adds(k: usize) -> Trace {
    let mut b = ProgramBuilder::new("robfull");
    b.li(Reg::T0, 144);
    b.li(Reg::T1, 12);
    b.div(Reg::T2, Reg::T0, Reg::T1);
    for i in 0..k {
        b.addi(Reg::TEMPS[3 + i % 4], Reg::S0, i as i64);
    }
    b.out(Reg::T2);
    b.halt();
    Emulator::new(&b.build().unwrap()).run().unwrap()
}

#[test]
fn single_dependency_chain_is_cycle_exact() {
    let short = run(&dep_chain_loop(8, 50), PipelineConfig::baseline());
    let long = run(&dep_chain_loop(16, 50), PipelineConfig::baseline());
    assert_eq!(short.cycles, 499, "8-link chain body cycles");
    assert_eq!(long.cycles, 981, "16-link chain body cycles");
    // The chain value carries across iterations, so every extra link costs
    // at least one cycle per iteration (8 extra links × 50 iterations =
    // 400 cycles, plus the occasional fetch bubble on the longer body).
    assert!(long.cycles - short.cycles >= 400, "one cycle per link per iteration");
}

#[test]
fn issue_width_saturation_is_cycle_exact() {
    let w4 = run(&independent_alus_loop(12, 50), PipelineConfig::baseline());
    assert_eq!(w4.cycles, 411, "4-wide cycles");
    let mut narrow = PipelineConfig::baseline();
    narrow.issue_width = 1;
    let w1 = run(&independent_alus_loop(12, 50), narrow);
    assert_eq!(w1.cycles, 900, "1-wide cycles");
    // A warm loop of independent ALU ops is issue-width-bound: ~14 ops per
    // iteration need ≥14 cycles at width 1 but ~4 at width 4.
    assert!(w1.cycles > 2 * w4.cycles, "1-wide must be at least 2x slower");
}

#[test]
fn load_blocked_on_overlapping_store_is_cycle_exact() {
    let blocked = run(&store_then_load(true), PipelineConfig::baseline());
    let free = run(&store_then_load(false), PipelineConfig::baseline());
    assert_eq!(blocked.cycles, 105, "overlapping store+load cycles");
    assert_eq!(free.cycles, 195, "disjoint store+load cycles");
    // The overlapping load waits for the store to execute, then forwards
    // (fixed 2-cycle latency, no memory round-trip); the disjoint load
    // issues immediately alongside the store but pays the L1D cold miss
    // the forwarded load avoids, so the *disjoint* variant is slower here.
    assert!(free.cycles > blocked.cycles);
}

#[test]
fn rob_full_stall_is_cycle_exact() {
    let mut tiny = PipelineConfig::baseline();
    tiny.rob_entries = 4;
    let stats = run(&div_then_adds(32), tiny);
    assert_eq!(stats.cycles, 292, "tiny-ROB div cycles");
    assert!(stats.rob_full_stalls > 0, "the divide must back the 4-entry ROB up into rename");
    // The same program on the 128-entry baseline ROB never stalls rename.
    let roomy = run(&div_then_adds(32), PipelineConfig::baseline());
    assert_eq!(roomy.cycles, 291, "baseline-ROB div cycles");
    assert_eq!(roomy.rob_full_stalls, 0);
    assert!(stats.cycles > roomy.cycles, "backpressure must cost cycles");
}

// ---- clustered-backend pins (DESIGN.md §11) ----

use dide_pipeline::{ClusterConfig, DeadElimConfig, SteerPolicy, SteerStats};

/// Drops the cluster-only counters so a clustered run can be compared
/// field-for-field against a unified run of the same machine.
fn strip_cluster_counters(mut stats: PipelineStats) -> PipelineStats {
    stats.clusters.clear();
    stats.steer = SteerStats::default();
    stats
}

/// A loop with one oracle-dead `slt` per iteration (dead on every
/// iteration but the last, when `out` reads it) — the steering target
/// population for the `DeadSteer` pins.
fn dead_slt_loop(dead_per_iter: usize, iters: i64) -> Trace {
    let mut b = ProgramBuilder::new("deadsteer");
    b.li(Reg::T0, 0);
    b.li(Reg::T1, iters);
    let top = b.label();
    b.bind(top);
    for _ in 0..dead_per_iter {
        b.slt(Reg::T2, Reg::T0, Reg::T1);
    }
    b.addi(Reg::T0, Reg::T0, 1);
    b.blt(Reg::T0, Reg::T1, top);
    b.out(Reg::T2);
    b.halt();
    Emulator::new(&b.build().unwrap()).run().unwrap()
}

#[test]
fn single_cluster_zero_penalty_is_cycle_identical_to_unified() {
    // N=1 with a free bypass network *is* the unified backend: one IQ slice
    // holding the whole queue, one FU pool holding every unit, and operand
    // visibility coinciding with the global ready bit. Every steering
    // policy degenerates to "cluster 0". The clustered loop must reproduce
    // the unified loop's statistics bit for bit (modulo the cluster/steer
    // counters that only it emits) — including with elimination on, where
    // dead predictions squash pre-dispatch in both loops.
    for trace in [dep_chain_loop(8, 50), store_then_load(true), dead_slt_loop(2, 120)] {
        for elim in [false, true] {
            let mut unified = PipelineConfig::contended();
            if elim {
                unified = unified.with_elimination(DeadElimConfig::default());
            }
            let base = run(&trace, unified);
            for steer in
                [SteerPolicy::RoundRobin, SteerPolicy::DependenceAffinity, SteerPolicy::DeadSteer]
            {
                let cfg =
                    unified.with_cluster(ClusterConfig { clusters: 1, bypass_penalty: 0, steer });
                let clustered = run(&trace, cfg);
                if steer == SteerPolicy::DeadSteer && !elim {
                    // Dead-steering without elimination turns on prediction
                    // (for steering), which perturbs training-side counters
                    // — but never timing: everything still runs on the one
                    // cluster.
                    assert_eq!(clustered.cycles, base.cycles, "elim {elim} steer dead cycles");
                    assert_eq!(clustered.committed, base.committed);
                } else {
                    assert_eq!(
                        strip_cluster_counters(clustered.clone()),
                        base,
                        "elim {elim} steer {steer:?}"
                    );
                }
                assert_eq!(clustered.clusters.len(), 1);
                assert_eq!(clustered.clusters[0].bypass_stalls, 0, "one cluster, no bypass");
                assert!(clustered.invariant_violations().is_empty());
            }
        }
    }
}

#[test]
fn cross_cluster_bypass_delay_is_cycle_exact() {
    // Round-robin over two clusters sends consecutive instructions of a
    // serial dependence chain to alternating clusters, so *every* chain
    // link crosses the cluster boundary and waits out the bypass penalty.
    let trace = dep_chain_loop(8, 50);
    let cycles_at = |penalty: u32| {
        let cfg = PipelineConfig::clustered(ClusterConfig {
            clusters: 2,
            bypass_penalty: penalty,
            steer: SteerPolicy::RoundRobin,
        });
        run(&trace, cfg)
    };
    let p0 = cycles_at(0);
    let p2 = cycles_at(2);
    let p4 = cycles_at(4);
    assert_eq!(p0.cycles, 507, "2-cluster penalty-0 cycles");
    assert_eq!(p2.cycles, 1302, "2-cluster penalty-2 cycles");
    assert_eq!(p4.cycles, 2104, "2-cluster penalty-4 cycles");
    // ~500 of the ~550 dynamic instructions sit on the cross-iteration
    // chain; at penalty p each link's wakeup arrives p cycles after the
    // producer's writeback, so total cycles grow by roughly p per link.
    assert!(p2.cycles > p0.cycles + 400, "penalty 2 must slow the chain");
    assert!(p4.cycles > p2.cycles + 400, "penalty 4 must slow it further");
    assert_eq!(p0.clusters[0].bypass_stalls + p0.clusters[1].bypass_stalls, 0);
    assert!(
        p2.clusters[0].bypass_stalls + p2.clusters[1].bypass_stalls > 400,
        "most chain links wait on a delayed remote wakeup"
    );
    for stats in [&p0, &p2, &p4] {
        assert_eq!(stats.committed, trace.len() as u64);
        assert_eq!(stats.clusters[0].issued + stats.clusters[1].issued, stats.dispatched);
        assert!(stats.invariant_violations().is_empty(), "{:?}", stats.invariant_violations());
    }
}

#[test]
fn dead_steering_under_a_full_cheap_cluster_iq_is_cycle_exact() {
    // Four oracle-dead `slt`s per iteration, all steered into the cheap
    // cluster, whose IQ slice is a single entry (2-entry global queue split
    // two ways) drained by a single ALU: dispatch must back up on the full
    // cheap slice, be charged `iq_full_stalls`, and still commit everything
    // in a pinned number of cycles.
    let trace = dead_slt_loop(4, 60);
    let mut cfg = PipelineConfig::clustered(ClusterConfig {
        clusters: 2,
        bypass_penalty: 2,
        steer: SteerPolicy::DeadSteer,
    });
    cfg.iq_entries = 2;
    cfg.dead.oracle = true; // policy stays Off: steer, never squash
    let stats = run(&trace, cfg);
    assert_eq!(stats.cycles, 480, "full-cheap-IQ cycles");
    assert_eq!(stats.committed, trace.len() as u64);
    assert!(stats.iq_full_stalls > 0, "the 1-entry cheap slice must stall dispatch");
    assert!(stats.steer.dead > 200, "4 dead slts x 59 warm iterations steer to the cheap cluster");
    assert_eq!(stats.clusters[1].steered_dead, stats.steer.dead);
    assert_eq!(stats.steer.dead_wrong, 0, "the oracle never steers a live instruction");
    assert_eq!(stats.steer.squashed, 0, "nothing is eliminated with the policy off");
    assert_eq!(stats.dead_predicted, 0);
    assert!(stats.invariant_violations().is_empty(), "{:?}", stats.invariant_violations());
}
