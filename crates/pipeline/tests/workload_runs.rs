//! End-to-end pipeline runs over the benchmark suite: the paper's headline
//! mechanisms must show up — resource-utilization reductions on the
//! baseline machine and IPC gains on the contended machine.

use dide_analysis::DeadnessAnalysis;
use dide_emu::{Emulator, Trace};
use dide_pipeline::{Core, DeadElimConfig, PipelineConfig, PipelineStats};
use dide_workloads::{suite, OptLevel};

fn trace_for(name: &str) -> Trace {
    let spec = *suite().iter().find(|s| s.name == name).expect("known benchmark");
    Emulator::new(&spec.build(OptLevel::O2, 1)).run().expect("runs to halt")
}

fn run(trace: &Trace, analysis: &DeadnessAnalysis, config: PipelineConfig) -> PipelineStats {
    Core::new(config).run(trace, analysis)
}

#[test]
fn expr_elimination_saves_resources_on_baseline() {
    let t = trace_for("expr");
    let a = DeadnessAnalysis::analyze(&t);
    let base = run(&t, &a, PipelineConfig::baseline());
    let elim = run(&t, &a, PipelineConfig::baseline().with_elimination(DeadElimConfig::default()));
    assert_eq!(base.committed, elim.committed);

    let alloc_reduction =
        PipelineStats::reduction(elim.phys_allocs, elim.savings.phys_allocs_saved);
    let rf_write_reduction = PipelineStats::reduction(elim.rf_writes, elim.savings.rf_writes_saved);
    println!(
        "expr: alloc -{:.1}%, rf writes -{:.1}%, d$ saved {}, accuracy {:.1}%, coverage {:.1}%, violations {}",
        100.0 * alloc_reduction,
        100.0 * rf_write_reduction,
        elim.savings.dcache_accesses_saved,
        100.0 * elim.elimination_accuracy(),
        100.0 * elim.elimination_coverage(),
        elim.dead_violations,
    );
    assert!(alloc_reduction > 0.05, "alloc reduction {alloc_reduction}");
    assert!(rf_write_reduction > 0.05, "rf write reduction {rf_write_reduction}");
    assert!(elim.elimination_accuracy() > 0.85, "accuracy {}", elim.elimination_accuracy());
    assert!(elim.elimination_coverage() > 0.5, "coverage {}", elim.elimination_coverage());
}

#[test]
fn expr_elimination_speeds_up_contended_machine() {
    let t = trace_for("expr");
    let a = DeadnessAnalysis::analyze(&t);
    let base = run(&t, &a, PipelineConfig::contended());
    let elim = run(&t, &a, PipelineConfig::contended().with_elimination(DeadElimConfig::default()));
    let speedup = base.cycles as f64 / elim.cycles as f64;
    println!(
        "expr contended: base {} cy (ipc {:.3}) -> elim {} cy (ipc {:.3}); speedup {:.3}",
        base.cycles,
        base.ipc(),
        elim.cycles,
        elim.ipc(),
        speedup
    );
    assert!(speedup > 1.0, "expected a speedup, got {speedup:.4}");
}

#[test]
fn elimination_lowers_rename_register_pressure() {
    let t = trace_for("expr");
    let a = DeadnessAnalysis::analyze(&t);
    let base = run(&t, &a, PipelineConfig::contended());
    let elim = run(&t, &a, PipelineConfig::contended().with_elimination(DeadElimConfig::default()));
    println!(
        "expr contended occupancy: phys {:.1} -> {:.1}, iq {:.1} -> {:.1}, rob {:.1} -> {:.1}",
        base.mean_phys_used(),
        elim.mean_phys_used(),
        base.mean_iq_occupancy(),
        elim.mean_iq_occupancy(),
        base.mean_rob_occupancy(),
        elim.mean_rob_occupancy(),
    );
    assert!(
        elim.mean_phys_used() < base.mean_phys_used(),
        "eliminated instructions hold no rename registers: {:.2} vs {:.2}",
        elim.mean_phys_used(),
        base.mean_phys_used()
    );
    assert!(elim.mean_iq_occupancy() <= base.mean_iq_occupancy() + 0.5);
    assert!(base.mean_rob_occupancy() > 0.0 && base.mean_iq_occupancy() > 0.0);
}

#[test]
fn all_benchmarks_commit_fully_with_elimination() {
    for spec in suite() {
        let t = Emulator::new(&spec.build(OptLevel::O2, 1)).run().expect("halts");
        let a = DeadnessAnalysis::analyze(&t);
        let stats =
            run(&t, &a, PipelineConfig::contended().with_elimination(DeadElimConfig::default()));
        assert_eq!(stats.committed, t.len() as u64, "{} must commit fully", spec.name);
        // Accuracy only means something once the predictor acts at scale;
        // `interp`'s deadness is keyed to indirect-jump targets, which the
        // conditional-branch CFI signature cannot see, so it (correctly)
        // predicts almost nothing there.
        if stats.dead_predicted >= 100 {
            assert!(
                stats.elimination_accuracy() > 0.75,
                "{}: accuracy {:.3} over {} predictions",
                spec.name,
                stats.elimination_accuracy(),
                stats.dead_predicted
            );
        }
    }
}
