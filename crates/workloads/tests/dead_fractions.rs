//! Calibration tests: the suite must span the paper's 3–16% dead range,
//! with `O2` (hoisting) producing substantially more dead instructions than
//! `O0` on the scheduling-sensitive benchmarks.

use dide_analysis::DeadnessAnalysis;
use dide_emu::Emulator;
use dide_workloads::{suite, OptLevel};

fn dead_fraction(name: &str, opt: OptLevel) -> f64 {
    let spec = *suite().iter().find(|s| s.name == name).expect("known benchmark");
    let program = spec.build(opt, 1);
    let trace = Emulator::new(&program).run().expect("benchmark runs to halt");
    let analysis = DeadnessAnalysis::analyze(&trace);
    analysis.stats().dead_fraction()
}

#[test]
fn suite_spans_the_papers_range_at_o2() {
    let mut fractions = Vec::new();
    for spec in suite() {
        let f = dead_fraction(spec.name, OptLevel::O2);
        println!("{:<10} O2 dead fraction: {:.2}%", spec.name, 100.0 * f);
        fractions.push((spec.name, f));
    }
    let min = fractions.iter().map(|&(_, f)| f).fold(f64::MAX, f64::min);
    let max = fractions.iter().map(|&(_, f)| f).fold(0.0, f64::max);
    assert!((0.01..=0.06).contains(&min), "floor should be near 3%: {min}");
    assert!((0.12..=0.22).contains(&max), "ceiling should be near 16%: {max}");
}

#[test]
fn hoisting_creates_dead_instructions() {
    for name in ["expr", "route", "anneal", "bitboard"] {
        let o0 = dead_fraction(name, OptLevel::O0);
        let o2 = dead_fraction(name, OptLevel::O2);
        println!("{name:<10} O0 {:.2}% -> O2 {:.2}%", 100.0 * o0, 100.0 * o2);
        assert!(o2 > o0 + 0.02, "{name}: O2 ({o2:.3}) should exceed O0 ({o0:.3}) by >=2 points");
    }
}

#[test]
fn stream_is_the_low_water_mark() {
    let f = dead_fraction("stream", OptLevel::O2);
    assert!(f < 0.06, "stream should be near the 3% floor, got {f:.3}");
}
