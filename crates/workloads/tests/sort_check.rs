//! The `sort` benchmark must actually sort: its first output is the
//! inversion count of the final array, which must be zero.

use dide_emu::Emulator;
use dide_workloads::{suite, OptLevel};

#[test]
fn quicksort_sorts() {
    let spec = *suite().iter().find(|s| s.name == "sort").unwrap();
    for opt in OptLevel::ALL {
        let program = spec.build(opt, 1);
        let trace = Emulator::new(&program).run().expect("sort halts");
        assert_eq!(trace.outputs()[0], 0, "{opt}: inversion count must be zero");
        assert!(trace.outputs()[1] > 0, "checksum accumulates");
        assert!(trace.len() > 30_000, "meaningful dynamic length: {}", trace.len());
    }
}

#[test]
fn rounds_scale_linearly() {
    let spec = *suite().iter().find(|s| s.name == "sort").unwrap();
    let t1 = Emulator::new(&spec.build(OptLevel::O2, 1)).run().unwrap();
    let t2 = Emulator::new(&spec.build(OptLevel::O2, 2)).run().unwrap();
    // One inversion-count output per round plus the final checksum.
    assert_eq!(t1.outputs().len(), 2);
    assert_eq!(t2.outputs().len(), 3);
    assert!(t2.outputs()[..2].iter().all(|&inv| inv == 0), "every round sorts");
    assert!(t2.len() > t1.len() * 3 / 2);
}
