//! The shipped `.asm` workloads must execute to halt with the documented
//! outputs, so the comments in `asm/*.asm` stay honest and the benchmarks
//! are safe to enroll in `dide bench`/`dide verify`.

use dide_emu::Emulator;
use dide_workloads::{asm_suite, find_workload, suite, OptLevel};

fn run(name: &str) -> dide_emu::Trace {
    let spec = find_workload(name).expect("asm workload enrolled");
    let program = spec.build(OptLevel::O2, 1);
    assert_eq!(program.name(), name);
    Emulator::new(&program).run().expect("asm workload halts")
}

#[test]
fn prime_counts_primes_to_400() {
    let trace = run("prime");
    assert_eq!(trace.outputs(), &[78, 397, 478], "count, largest, final snapshot");
    assert!(trace.len() > 5_000, "meaningful dynamic length: {}", trace.len());
}

#[test]
fn matmul_checksum_is_stable() {
    let trace = run("matmul");
    // C = A x B with A[i][j] = i + j + 1 and B[i][j] = j + 1, so
    // C[i][j] = (j+1)(8i+36) and checksum = 36 * 512 = 18432.
    assert_eq!(trace.outputs(), &[18432]);
    assert!(trace.len() > 20_000, "meaningful dynamic length: {}", trace.len());
}

#[test]
fn matmul_scale_grows_the_trace_linearly() {
    let spec = find_workload("matmul").expect("asm workload enrolled");
    let base = Emulator::new(&spec.build(OptLevel::O2, 1)).run().expect("halts");
    let scaled = Emulator::new(&spec.build(OptLevel::O2, 4)).run().expect("halts");
    // Same result every round, so the checksum is scale-invariant...
    assert_eq!(scaled.outputs(), base.outputs());
    // ...while the dynamic trace grows with the rounds count: 16 rounds
    // instead of 4 means just under 4x the work (setup is amortized).
    let ratio = scaled.len() as f64 / base.len() as f64;
    assert!((3.5..=4.0).contains(&ratio), "expected ~4x growth, got {ratio:.2}x");
}

#[test]
fn strsearch_counts_both_patterns() {
    let trace = run("strsearch");
    let outputs = trace.outputs();
    assert_eq!(outputs[0], 9, "\"the\" occurrences");
    assert_eq!(outputs[1], 3, "\"er\" occurrences");
    assert!(outputs[2] > 0, "final snapshot is live");
}

#[test]
fn asm_suite_is_disjoint_from_the_golden_suite() {
    for asm in asm_suite() {
        assert!(
            suite().iter().all(|s| s.name != asm.name),
            "asm workload {} shadows a suite benchmark",
            asm.name
        );
        assert!(find_workload(asm.name).is_some());
    }
    assert!(find_workload("expr").is_some(), "suite names still resolve");
    assert!(find_workload("nope").is_none());
}
