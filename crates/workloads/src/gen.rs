//! Seeded random program generator.
//!
//! Produces arbitrary — but always valid and always terminating — SIR
//! programs for property-based differential testing: the emulator, the
//! deadness analysis and the timing pipeline are all exercised against the
//! same random programs.

use dide_isa::{Program, ProgramBuilder, Reg};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape parameters for [`random_program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenConfig {
    /// Number of straight-line segments.
    pub segments: usize,
    /// Operations per segment.
    pub segment_len: usize,
    /// Trip count of each bounded inner loop.
    pub loop_iters: u32,
    /// Scratch memory words available to loads/stores.
    pub memory_slots: usize,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig { segments: 8, segment_len: 12, loop_iters: 5, memory_slots: 16 }
    }
}

/// Registers the generator is allowed to clobber freely.
const SCRATCH: [Reg; 12] = [
    Reg::T0,
    Reg::T1,
    Reg::T2,
    Reg::T3,
    Reg::T4,
    Reg::T5,
    Reg::T6,
    Reg::T7,
    Reg::S0,
    Reg::S1,
    Reg::S2,
    Reg::S3,
];

/// Generates a random, valid, always-terminating program.
///
/// Termination is guaranteed by construction: conditional branches only
/// jump *forward*, and every backward branch is the bottom of a counted
/// loop with a compile-time trip count.
///
/// # Panics
///
/// Panics if `config.memory_slots` is zero.
#[must_use]
pub fn random_program(seed: u64, config: &GenConfig) -> Program {
    assert!(config.memory_slots > 0, "need at least one memory slot");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = ProgramBuilder::new(format!("random-{seed:#x}"));

    let scratch_base = b.data_zeros(config.memory_slots * 8);
    let base = Reg::G5;
    b.li_u64(base, scratch_base);

    // Seed the scratch registers.
    for r in SCRATCH {
        b.li(r, rng.gen_range(-1000..1000));
    }

    for _ in 0..config.segments {
        let looped = rng.gen_bool(0.4);
        let (top, counter) = if looped {
            let counter = Reg::G4;
            b.li(counter, i64::from(config.loop_iters));
            let top = b.label();
            b.bind(top);
            (Some(top), Some(counter))
        } else {
            (None, None)
        };

        for _ in 0..config.segment_len {
            emit_random_op(&mut b, &mut rng, base, config.memory_slots);
        }

        if let (Some(top), Some(counter)) = (top, counter) {
            b.addi(counter, counter, -1);
            b.bne(counter, Reg::ZERO, top);
        }
    }

    // Make every scratch register observable so the whole computation has
    // live roots (and differential tests can compare final values).
    for r in SCRATCH {
        b.out(r);
    }
    b.halt();
    b.build().expect("generator emits only valid programs")
}

fn pick(rng: &mut StdRng) -> Reg {
    SCRATCH[rng.gen_range(0..SCRATCH.len())]
}

fn emit_random_op(b: &mut ProgramBuilder, rng: &mut StdRng, base: Reg, slots: usize) {
    let (d, s1, s2) = (pick(rng), pick(rng), pick(rng));
    match rng.gen_range(0..14) {
        0 => b.add(d, s1, s2),
        1 => b.sub(d, s1, s2),
        2 => b.xor(d, s1, s2),
        3 => b.and(d, s1, s2),
        4 => b.or(d, s1, s2),
        5 => b.mul(d, s1, s2),
        6 => b.div(d, s1, s2),
        7 => b.slt(d, s1, s2),
        8 => b.addi(d, s1, rng.gen_range(-64..64)),
        9 => b.slli(d, s1, rng.gen_range(0..8)),
        10 => {
            let off = 8 * rng.gen_range(0..slots as i64);
            b.sd(s1, base, off)
        }
        11 => {
            let off = 8 * rng.gen_range(0..slots as i64);
            b.ld(d, base, off)
        }
        12 => {
            // Forward skip over a couple of ops.
            let skip = b.label();
            b.bne(s1, s2, skip);
            b.add(d, s1, s2);
            b.addi(d, d, 1);
            b.bind(skip)
        }
        _ => b.li(d, rng.gen_range(-100..100)),
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let cfg = GenConfig::default();
        let a = random_program(7, &cfg);
        let c = random_program(7, &cfg);
        assert_eq!(a.insts(), c.insts());
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = GenConfig::default();
        assert_ne!(random_program(1, &cfg).insts(), random_program(2, &cfg).insts());
    }

    #[test]
    fn always_valid_over_many_seeds() {
        let cfg = GenConfig::default();
        for seed in 0..50 {
            let p = random_program(seed, &cfg);
            assert!(p.len() > cfg.segments * cfg.segment_len);
        }
    }

    #[test]
    #[should_panic(expected = "memory slot")]
    fn zero_slots_panics() {
        let _ = random_program(0, &GenConfig { memory_slots: 0, ..GenConfig::default() });
    }
}
