//! Seeded random program generator.
//!
//! Produces arbitrary — but always valid and always terminating — SIR
//! programs for property-based differential testing: the emulator, the
//! deadness analysis and the timing pipeline are all exercised against the
//! same random programs.
//!
//! Beyond plain ALU traffic the generator manufactures the patterns that
//! make deadness analysis hard: sub-word stores and loads that partially
//! alias each other, diamond control flow whose arms kill each other's
//! values, and call-like save/clobber/restore sequences whose spill slots
//! are frequently overwritten before they are reloaded.

use dide_isa::{Program, ProgramBuilder, Reg};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape parameters for [`random_program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenConfig {
    /// Number of straight-line segments.
    pub segments: usize,
    /// Operations per segment.
    pub segment_len: usize,
    /// Trip count of each bounded inner loop.
    pub loop_iters: u32,
    /// Scratch memory words available to loads/stores.
    pub memory_slots: usize,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig { segments: 8, segment_len: 12, loop_iters: 5, memory_slots: 16 }
    }
}

impl GenConfig {
    /// Derives a shape configuration from a bare seed, splitmix64-mixed so
    /// config and program content are uncorrelated. This is the canonical
    /// seed → config mapping shared by the `dide verify` fuzz driver and
    /// the campaign engine's `gen:<seed>` workloads: every field lands
    /// strictly inside its [`GenConfig::validate`] bounds.
    #[must_use]
    pub fn derived(seed: u64) -> GenConfig {
        let mut x = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut next = move || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        GenConfig {
            segments: 2 + (next() % 9) as usize,
            segment_len: 4 + (next() % 13) as usize,
            loop_iters: 1 + (next() % 6) as u32,
            memory_slots: 4 + (next() % 21) as usize,
        }
    }

    /// Checks that the configuration can generate a valid, terminating
    /// program, returning a description of the first problem found.
    ///
    /// # Errors
    ///
    /// Every field must be at least 1: zero segments or zero
    /// `segment_len` generate an empty program, zero memory slots leave
    /// loads/stores nowhere legal to touch, and a zero `loop_iters`
    /// would emit loops whose counter starts at zero and counts *down*,
    /// never terminating.
    pub fn validate(&self) -> Result<(), String> {
        if self.segments == 0 {
            return Err("GenConfig: segments must be at least 1 (got 0)".into());
        }
        if self.segment_len == 0 {
            return Err("GenConfig: segment_len must be at least 1 (got 0)".into());
        }
        if self.memory_slots == 0 {
            return Err("GenConfig: need at least one memory slot (got 0)".into());
        }
        if self.loop_iters == 0 {
            return Err(
                "GenConfig: loop_iters must be at least 1 (a zero-trip loop would decrement \
                 its counter past zero and never terminate)"
                    .into(),
            );
        }
        Ok(())
    }
}

/// Registers the generator is allowed to clobber freely.
const SCRATCH: [Reg; 12] = [
    Reg::T0,
    Reg::T1,
    Reg::T2,
    Reg::T3,
    Reg::T4,
    Reg::T5,
    Reg::T6,
    Reg::T7,
    Reg::S0,
    Reg::S1,
    Reg::S2,
    Reg::S3,
];

/// Generates a random, valid, always-terminating program.
///
/// Termination is guaranteed by construction: conditional branches only
/// jump *forward*, and every backward branch is the bottom of a counted
/// loop with a compile-time trip count.
///
/// # Panics
///
/// Panics if `config` is invalid (see [`GenConfig::validate`]).
#[must_use]
pub fn random_program(seed: u64, config: &GenConfig) -> Program {
    if let Err(e) = config.validate() {
        panic!("{e}");
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = ProgramBuilder::new(format!("random-{seed:#x}"));

    let scratch_base = b.data_zeros(config.memory_slots * 8);
    let base = Reg::G5;
    b.li_u64(base, scratch_base);

    // Seed the scratch registers.
    for r in SCRATCH {
        b.li(r, rng.gen_range(-1000..1000));
    }

    for _ in 0..config.segments {
        let looped = rng.gen_bool(0.4);
        let (top, counter) = if looped {
            let counter = Reg::G4;
            b.li(counter, i64::from(config.loop_iters));
            let top = b.label();
            b.bind(top);
            (Some(top), Some(counter))
        } else {
            (None, None)
        };

        for _ in 0..config.segment_len {
            emit_random_op(&mut b, &mut rng, base, config.memory_slots);
        }

        if let (Some(top), Some(counter)) = (top, counter) {
            b.addi(counter, counter, -1);
            b.bne(counter, Reg::ZERO, top);
        }
    }

    // Make every scratch register observable so the whole computation has
    // live roots (and differential tests can compare final values).
    for r in SCRATCH {
        b.out(r);
    }
    b.halt();
    b.build().expect("generator emits only valid programs")
}

fn pick(rng: &mut StdRng) -> Reg {
    SCRATCH[rng.gen_range(0..SCRATCH.len())]
}

/// A random byte offset into the scratch area such that an access of
/// `width` bytes stays in bounds. Offsets are *not* width-aligned, so
/// accesses of different widths partially overlap each other — the aliasing
/// patterns that distinguish `StoreUnread` / `StoreOverwritten` /
/// transitively-dead stores.
fn unaligned_offset(rng: &mut StdRng, slots: usize, width: usize) -> i64 {
    rng.gen_range(0..=(slots * 8 - width) as i64)
}

fn emit_random_op(b: &mut ProgramBuilder, rng: &mut StdRng, base: Reg, slots: usize) {
    let (d, s1, s2) = (pick(rng), pick(rng), pick(rng));
    match rng.gen_range(0..18) {
        0 => b.add(d, s1, s2),
        1 => b.sub(d, s1, s2),
        2 => b.xor(d, s1, s2),
        3 => b.and(d, s1, s2),
        4 => b.or(d, s1, s2),
        5 => b.mul(d, s1, s2),
        6 => b.div(d, s1, s2),
        7 => b.slt(d, s1, s2),
        8 => b.addi(d, s1, rng.gen_range(-64..64)),
        9 => b.slli(d, s1, rng.gen_range(0..8)),
        10 => {
            // Sub-word store at an arbitrary (unaligned) offset.
            let w = [1usize, 2, 4, 8][rng.gen_range(0..4usize)];
            let off = unaligned_offset(rng, slots, w);
            match w {
                1 => b.sb(s1, base, off),
                2 => b.sh(s1, base, off),
                4 => b.sw(s1, base, off),
                _ => b.sd(s1, base, off),
            }
        }
        11 => {
            // Sub-word load, signed or unsigned, at an arbitrary offset.
            let w = [1usize, 2, 4, 8][rng.gen_range(0..4usize)];
            let off = unaligned_offset(rng, slots, w);
            match (w, rng.gen_bool(0.5)) {
                (1, true) => b.lb(d, base, off),
                (1, false) => b.lbu(d, base, off),
                (2, true) => b.lh(d, base, off),
                (2, false) => b.lhu(d, base, off),
                (4, true) => b.lw(d, base, off),
                (4, false) => b.lwu(d, base, off),
                _ => b.ld(d, base, off),
            }
        }
        12 => {
            // Forward skip over a couple of ops.
            let skip = b.label();
            b.bne(s1, s2, skip);
            b.add(d, s1, s2);
            b.addi(d, d, 1);
            b.bind(skip)
        }
        13 => {
            // Diamond: both arms define `d`, so the not-taken arm's write
            // is killed at the join whenever the taken arm re-defines it.
            let else_arm = b.label();
            let merge = b.label();
            b.blt(s1, s2, else_arm);
            b.add(d, s1, s2);
            b.j(merge);
            b.bind(else_arm);
            b.sub(d, s2, s1);
            b.bind(merge)
        }
        14 => {
            // Call-like save/clobber/restore: spill `s1`, clobber it, then
            // reload. The spill is useful only if nothing overwrites the
            // slot before the reload — later stores frequently do.
            let off = 8 * rng.gen_range(0..slots as i64);
            b.sd(s1, base, off);
            b.xor(s1, s1, s2);
            b.addi(s1, s1, rng.gen_range(-8..8));
            b.ld(s1, base, off)
        }
        15 => {
            // Double-word store at an aligned slot (dense aliasing with
            // the save/restore pattern above).
            let off = 8 * rng.gen_range(0..slots as i64);
            b.sd(s1, base, off)
        }
        16 => {
            let off = 8 * rng.gen_range(0..slots as i64);
            b.ld(d, base, off)
        }
        _ => b.li(d, rng.gen_range(-100..100)),
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let cfg = GenConfig::default();
        let a = random_program(7, &cfg);
        let c = random_program(7, &cfg);
        assert_eq!(a.insts(), c.insts());
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = GenConfig::default();
        assert_ne!(random_program(1, &cfg).insts(), random_program(2, &cfg).insts());
    }

    #[test]
    fn always_valid_over_many_seeds() {
        let cfg = GenConfig::default();
        for seed in 0..50 {
            let p = random_program(seed, &cfg);
            assert!(p.len() > cfg.segments * cfg.segment_len);
        }
    }

    #[test]
    fn validate_accepts_default_and_minimal() {
        assert!(GenConfig::default().validate().is_ok());
        let minimal = GenConfig { segments: 1, segment_len: 1, loop_iters: 1, memory_slots: 1 };
        assert!(minimal.validate().is_ok());
        // The minimal config must actually generate and terminate.
        let p = random_program(3, &minimal);
        assert!(p.len() >= 2);
    }

    #[test]
    fn validate_rejects_each_zero_field() {
        let d = GenConfig::default();
        for (cfg, needle) in [
            (GenConfig { segments: 0, ..d }, "segments"),
            (GenConfig { segment_len: 0, ..d }, "segment_len"),
            (GenConfig { memory_slots: 0, ..d }, "memory slot"),
            (GenConfig { loop_iters: 0, ..d }, "loop_iters"),
        ] {
            let err = cfg.validate().expect_err("zero field must be rejected");
            assert!(err.contains(needle), "error {err:?} should mention {needle:?}");
        }
    }

    #[test]
    #[should_panic(expected = "memory slot")]
    fn zero_slots_panics() {
        let _ = random_program(0, &GenConfig { memory_slots: 0, ..GenConfig::default() });
    }

    #[test]
    #[should_panic(expected = "loop_iters")]
    fn zero_loop_iters_panics() {
        let _ = random_program(0, &GenConfig { loop_iters: 0, ..GenConfig::default() });
    }

    #[test]
    fn single_slot_accesses_stay_in_bounds() {
        // With one 8-byte slot every generated access must fit inside it;
        // emulating proves no out-of-bounds/guard-page faults occur.
        let cfg = GenConfig { memory_slots: 1, ..GenConfig::default() };
        for seed in 0..20 {
            let _ = random_program(seed, &cfg);
        }
    }
}
