//! `netflow` — pointer-chasing arc relaxation (mcf-like).
//!
//! Walks a single-cycle linked list of "arc" nodes laid out randomly in
//! memory (poor locality, like mcf). The relaxation always accumulates the
//! arc weight; the *excess* computation is hoisted at `O2` but consumed
//! only on the periodic "augmenting" iterations.

use dide_isa::{Program, ProgramBuilder, Reg};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::OptLevel;

const NODES: usize = 1024;
const BASE_ITERS: i64 = 4000;

pub(crate) fn build(opt: OptLevel, scale: u32) -> Program {
    let mut b = ProgramBuilder::new(match opt {
        OptLevel::O0 => "netflow-O0",
        OptLevel::O2 => "netflow-O2",
    });

    // Nodes: 16 bytes each, [next_node_index, weight]. A random permutation
    // cycle touches all nodes before repeating.
    let mut rng = StdRng::seed_from_u64(0x3CF);
    let mut order: Vec<u64> = (0..NODES as u64).collect();
    order.shuffle(&mut rng);
    let mut next = vec![0u64; NODES];
    for w in 0..NODES {
        next[order[w] as usize] = order[(w + 1) % NODES];
    }
    let mut node_base = 0;
    for (idx, &nx) in next.iter().enumerate() {
        let addr = b.data_u64(nx);
        b.data_u64(rng.gen_range(1..1000));
        if idx == 0 {
            node_base = addr;
        }
    }

    let (i, n, acc) = (Reg::S0, Reg::S1, Reg::S3);
    let (base, cur) = (Reg::S4, Reg::S5);

    b.li(i, 0);
    b.li(n, BASE_ITERS * i64::from(scale));
    b.li(acc, 0);
    b.li_u64(base, node_base);
    b.li(cur, 0);

    let top = b.label();
    let no_augment = b.label();

    b.bind(top);
    // addr = base + cur * 16
    b.slli(Reg::T0, cur, 4);
    b.add(Reg::T0, Reg::T0, base);
    b.ld(cur, Reg::T0, 0); // next (loop-carried: always live)
    b.ld(Reg::T1, Reg::T0, 8); // weight
    b.add(acc, acc, Reg::T1); // relaxation (live)

    if opt == OptLevel::O2 {
        // Hoisted excess computation.
        b.addi(Reg::T2, Reg::T1, -500);
    }
    // Augment on 1 of 4 iterations (periodic).
    b.andi(Reg::T3, i, 3);
    b.bne(Reg::T3, Reg::ZERO, no_augment);
    if opt == OptLevel::O0 {
        b.addi(Reg::T2, Reg::T1, -500);
    }
    b.add(acc, acc, Reg::T2);
    b.bind(no_augment);

    b.addi(i, i, 1);
    b.blt(i, n, top);

    b.out(acc);
    b.halt();
    b.build().expect("netflow benchmark is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_has_node_table() {
        let p = build(OptLevel::O2, 1);
        assert_eq!(p.data().len(), NODES * 16);
    }
}
