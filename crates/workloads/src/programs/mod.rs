//! The benchmark suite: eleven synthetic SPECint-style programs.

mod anneal;
mod bitboard;
mod compress;
mod expr;
mod interp;
mod netflow;
mod objstore;
mod parse;
mod route;
mod sort;
mod stream;

use dide_isa::Program;

use crate::OptLevel;

/// Identifies one benchmark of the suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BenchKind {
    /// Expression-tree evaluation with heavy speculative hoisting
    /// (gcc-like; the high end of the dead range).
    Expr,
    /// Byte-stream compression inner loop (gzip-like).
    Compress,
    /// Pointer-chasing network flow relaxation (mcf-like).
    Netflow,
    /// Token classification with deep call chains (parser-like).
    Parse,
    /// Bytecode interpreter dispatch loop (perl-like).
    Interp,
    /// Simulated-annealing accept/reject loop (twolf-like).
    Anneal,
    /// Object creation/update with redundant field stores (vortex-like).
    Objstore,
    /// Grid routing with conditional bend penalties (vpr-like).
    Route,
    /// 64-bit mask move generation (crafty-like).
    Bitboard,
    /// Recursive quicksort: deep call chains and data-dependent partition
    /// branches that defeat prediction.
    Sort,
    /// Dense streaming arithmetic where nearly everything is consumed
    /// (the low end of the dead range).
    Stream,
    /// An external benchmark written in SIR assembly, shipped in the
    /// repository's `asm/` directory and embedded via
    /// [`dide_asm::builtin`]. The payload is the builtin name.
    Asm(&'static str),
    /// A seeded random program from the property-test generator
    /// ([`crate::random_program`] with [`crate::GenConfig::derived`]).
    /// The payload is the seed. Used by the campaign engine to widen a
    /// design-space sweep beyond the hand-written suite; ignores `opt`
    /// and `scale` (the derived shape config is a pure function of the
    /// seed).
    Gen(u64),
}

/// A buildable benchmark descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// Short name used in report tables.
    pub name: &'static str,
    /// Which benchmark this is.
    pub kind: BenchKind,
    /// One-line description.
    pub description: &'static str,
}

impl WorkloadSpec {
    /// Builds the benchmark program.
    ///
    /// `scale` multiplies the iteration count linearly (`1` gives a dynamic
    /// trace of roughly 50–200 k instructions). Assembly workloads
    /// ([`BenchKind::Asm`]) are fixed source texts, so they ignore `opt`;
    /// `matmul` exposes a rounds-loop scale knob (see
    /// [`dide_asm::builtin::program_scaled`]), the other `.asm` benchmarks
    /// ignore `scale` too.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is zero.
    #[must_use]
    pub fn build(&self, opt: OptLevel, scale: u32) -> Program {
        assert!(scale > 0, "scale must be at least 1");
        match self.kind {
            BenchKind::Expr => expr::build(opt, scale),
            BenchKind::Compress => compress::build(opt, scale),
            BenchKind::Netflow => netflow::build(opt, scale),
            BenchKind::Parse => parse::build(opt, scale),
            BenchKind::Interp => interp::build(opt, scale),
            BenchKind::Anneal => anneal::build(opt, scale),
            BenchKind::Objstore => objstore::build(opt, scale),
            BenchKind::Route => route::build(opt, scale),
            BenchKind::Bitboard => bitboard::build(opt, scale),
            BenchKind::Sort => sort::build(opt, scale),
            BenchKind::Stream => stream::build(opt, scale),
            BenchKind::Asm(name) => {
                dide_asm::builtin::program_scaled(name, scale).expect("builtin asm workload exists")
            }
            BenchKind::Gen(seed) => {
                crate::gen::random_program(seed, &crate::GenConfig::derived(seed))
            }
        }
    }

    /// A seeded random-program workload (see [`BenchKind::Gen`]).
    ///
    /// The static `name` is always `"gen"`; display labels that must
    /// distinguish seeds (the campaign engine's `gen:<seed>` job ids) are
    /// formatted from the kind, and fixture caching keys on the kind — so
    /// two seeds never share a cache entry despite the shared name.
    #[must_use]
    pub fn generated(seed: u64) -> WorkloadSpec {
        WorkloadSpec {
            name: "gen",
            kind: BenchKind::Gen(seed),
            description: "seeded random program (property-test generator)",
        }
    }
}

/// The full eleven-benchmark suite, in reporting order.
#[must_use]
pub fn suite() -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec {
            name: "expr",
            kind: BenchKind::Expr,
            description: "expression evaluation, heavy speculative hoisting (gcc-like)",
        },
        WorkloadSpec {
            name: "compress",
            kind: BenchKind::Compress,
            description: "byte-stream compression inner loop (gzip-like)",
        },
        WorkloadSpec {
            name: "netflow",
            kind: BenchKind::Netflow,
            description: "pointer-chasing flow relaxation (mcf-like)",
        },
        WorkloadSpec {
            name: "parse",
            kind: BenchKind::Parse,
            description: "token classification with call chains (parser-like)",
        },
        WorkloadSpec {
            name: "interp",
            kind: BenchKind::Interp,
            description: "bytecode interpreter dispatch (perl-like)",
        },
        WorkloadSpec {
            name: "anneal",
            kind: BenchKind::Anneal,
            description: "annealing accept/reject loop (twolf-like)",
        },
        WorkloadSpec {
            name: "objstore",
            kind: BenchKind::Objstore,
            description: "object store with redundant field writes (vortex-like)",
        },
        WorkloadSpec {
            name: "route",
            kind: BenchKind::Route,
            description: "grid routing with bend penalties (vpr-like)",
        },
        WorkloadSpec {
            name: "bitboard",
            kind: BenchKind::Bitboard,
            description: "64-bit mask move generation (crafty-like)",
        },
        WorkloadSpec {
            name: "sort",
            kind: BenchKind::Sort,
            description: "recursive quicksort: deep calls, unpredictable partitions",
        },
        WorkloadSpec {
            name: "stream",
            kind: BenchKind::Stream,
            description: "dense streaming arithmetic, minimal deadness",
        },
    ]
}

/// The shipped `.asm` benchmarks (from the repository's `asm/` directory),
/// enrolled as first-class workloads. Kept separate from [`suite`] so the
/// golden-pinned experiment tables keep iterating the original eleven
/// benchmarks.
#[must_use]
pub fn asm_suite() -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec {
            name: "prime",
            kind: BenchKind::Asm("prime"),
            description: "trial-division prime counting (asm/prime.asm)",
        },
        WorkloadSpec {
            name: "matmul",
            kind: BenchKind::Asm("matmul"),
            description: "8x8 matrix multiply with dead rounds (asm/matmul.asm)",
        },
        WorkloadSpec {
            name: "strsearch",
            kind: BenchKind::Asm("strsearch"),
            description: "naive substring search via call/ret (asm/strsearch.asm)",
        },
    ]
}

/// Looks up a workload by name across [`suite`] and [`asm_suite`].
#[must_use]
pub fn find_workload(name: &str) -> Option<WorkloadSpec> {
    suite().into_iter().chain(asm_suite()).find(|s| s.name == name)
}
