//! `anneal` — simulated-annealing accept/reject loop (twolf-like).
//!
//! Each iteration proposes a cell swap: the cost delta is always computed
//! (it feeds the accept test, so it is live), but at `O2` the *new
//! position* values are computed before the test and die on every rejected
//! proposal.

use dide_isa::{Program, ProgramBuilder, Reg};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::kernels::{lcg_init, lcg_step, rng_bits};
use crate::OptLevel;

const CELLS: usize = 256;
const BASE_ITERS: i64 = 3000;

pub(crate) fn build(opt: OptLevel, scale: u32) -> Program {
    let mut b = ProgramBuilder::new(match opt {
        OptLevel::O0 => "anneal-O0",
        OptLevel::O2 => "anneal-O2",
    });

    // Cell positions, 8 bytes each.
    let mut rng = StdRng::seed_from_u64(0x7A0);
    let mut cell_base = 0;
    for idx in 0..CELLS {
        let addr = b.data_u64(rng.gen_range(0..4096));
        if idx == 0 {
            cell_base = addr;
        }
    }

    let (i, n, acc) = (Reg::S0, Reg::S1, Reg::S3);
    let (base, lcg) = (Reg::S4, Reg::S2);

    b.li(i, 0);
    b.li(n, BASE_ITERS * i64::from(scale));
    b.li(acc, 0);
    b.li_u64(base, cell_base);
    lcg_init(&mut b, lcg, 0x7001);

    let top = b.label();
    let reject = b.label();
    let join = b.label();

    b.bind(top);
    lcg_step(&mut b, lcg, Reg::T0);
    // Pick a cell and load its position.
    rng_bits(&mut b, Reg::T1, lcg, 35, 8);
    b.slli(Reg::T1, Reg::T1, 3);
    b.add(Reg::T1, Reg::T1, base);
    b.ld(Reg::T2, Reg::T1, 0);

    // Cost delta: always live (feeds the accept test and the accumulator).
    b.xor(Reg::T3, Reg::T2, i);
    b.andi(Reg::T3, Reg::T3, 0xff);
    b.add(acc, acc, Reg::T3);

    if opt == OptLevel::O2 {
        // Hoisted new position, dead whenever the proposal is rejected.
        b.addi(Reg::T4, Reg::T2, 17);
        b.andi(Reg::T4, Reg::T4, 0xfff);
    }

    // Accept roughly 1 in 4 proposals (periodic: cooling schedule).
    b.andi(Reg::T5, i, 3);
    b.bne(Reg::T5, Reg::ZERO, reject);
    if opt == OptLevel::O0 {
        b.addi(Reg::T4, Reg::T2, 17);
        b.andi(Reg::T4, Reg::T4, 0xfff);
    }
    b.sd(Reg::T4, Reg::T1, 0); // commit the move (read by later loads)
    b.j(join);

    b.bind(reject);
    b.addi(acc, acc, 1);

    b.bind(join);
    b.addi(i, i, 1);
    b.blt(i, n, top);

    b.out(acc);
    b.halt();
    b.build().expect("anneal benchmark is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_both_levels() {
        assert!(build(OptLevel::O2, 1).len() > 20);
        assert!(build(OptLevel::O0, 1).len() > 20);
    }
}
