//! `interp` — bytecode interpreter dispatch loop (perl-like).
//!
//! An indirect-jump dispatch loop over eight handlers. At `O2` the operand
//! loads are hoisted above the dispatch (the interpreter "pre-decodes"
//! both potential operands), but unary and nullary handlers consume only
//! one or neither — speculative operand fetch is a classic interpreter
//! source of dead loads.

use dide_isa::{Program, ProgramBuilder, Reg};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::OptLevel;

const CODE_BYTES: usize = 1024;
const BASE_ITERS: i64 = 2500;
/// Instruction slots per handler (handlers are padded to this stride).
const STRIDE: i64 = 8;

pub(crate) fn build(opt: OptLevel, scale: u32) -> Program {
    let mut b = ProgramBuilder::new(match opt {
        OptLevel::O0 => "interp-O0",
        OptLevel::O2 => "interp-O2",
    });

    // Bytecode: a repeating phrase with occasional random opcodes, so the
    // dispatch stream is largely (but not perfectly) predictable.
    let mut rng = StdRng::seed_from_u64(0x1E7);
    let phrase = [0u8, 3, 1, 0, 4, 2, 5, 0, 3, 7, 1, 6];
    let mut code = Vec::with_capacity(CODE_BYTES);
    for i in 0..CODE_BYTES {
        if rng.gen_ratio(1, 25) {
            code.push(rng.gen_range(0..8u8));
        } else {
            code.push(phrase[i % phrase.len()]);
        }
    }
    let code_base = b.data_bytes(&code);
    b.data_align(8);
    // Two-slot operand stack in memory.
    let stack_base = b.data_zeros(16);

    let (i, n, acc) = (Reg::S0, Reg::S1, Reg::S3);
    let (cbase, vsp, flag) = (Reg::S4, Reg::S5, Reg::S6);

    let main = b.label();
    b.j(main);

    // --- handler table: 8 handlers, each padded to STRIDE instructions ---
    // All handlers end with `ret`. t4 = first operand, t5 = second.
    let handler_base = b.here();
    let emit_handler = |b: &mut ProgramBuilder, body: &dyn Fn(&mut ProgramBuilder)| {
        let start = b.here();
        body(b);
        b.ret();
        assert!(i64::from(b.here() - start) <= STRIDE, "handler exceeds stride");
        while i64::from(b.here() - start) < STRIDE {
            b.nop();
        }
    };
    // 0: add — consumes both operands.
    emit_handler(&mut b, &|b| {
        b.add(Reg::T6, Reg::T4, Reg::T5);
        b.add(acc, acc, Reg::T6);
    });
    // 1: neg — consumes t4 only.
    emit_handler(&mut b, &|b| {
        b.sub(Reg::T6, Reg::ZERO, Reg::T4);
        b.add(acc, acc, Reg::T6);
    });
    // 2: const — consumes neither operand.
    emit_handler(&mut b, &|b| {
        b.addi(acc, acc, 3);
    });
    // 3: mul — consumes both.
    emit_handler(&mut b, &|b| {
        b.mul(Reg::T6, Reg::T4, Reg::T5);
        b.add(acc, acc, Reg::T6);
    });
    // 4: dup — consumes t4 only.
    emit_handler(&mut b, &|b| {
        b.add(acc, acc, Reg::T4);
    });
    // 5: cmp — sets a flag consumed by a later conditional handler.
    emit_handler(&mut b, &|b| {
        b.slt(flag, Reg::T4, Reg::T5);
    });
    // 6: condadd — consumes the flag.
    emit_handler(&mut b, &|b| {
        b.add(acc, acc, flag);
    });
    // 7: xorip — consumes neither operand.
    emit_handler(&mut b, &|b| {
        b.xor(acc, acc, i);
    });

    b.bind(main);
    b.li(i, 0);
    b.li(n, BASE_ITERS * i64::from(scale));
    b.li(acc, 0);
    b.li_u64(cbase, code_base);
    b.li_u64(vsp, stack_base);
    b.li(flag, 0);
    b.li(Reg::G0, STRIDE);

    let top = b.label();
    b.bind(top);
    // Fetch the opcode.
    b.andi(Reg::T0, i, (CODE_BYTES - 1) as i64);
    b.add(Reg::T0, Reg::T0, cbase);
    b.lbu(Reg::T1, Reg::T0, 0);

    if opt == OptLevel::O2 {
        // Hoisted speculative operand fetch (pre-decode).
        b.ld(Reg::T4, vsp, 0);
        b.ld(Reg::T5, vsp, 8);
    }

    // Indirect dispatch: target = handler_base + op * STRIDE.
    b.mul(Reg::T2, Reg::T1, Reg::G0);
    b.jalr(Reg::RA, Reg::T2, i64::from(handler_base));

    if opt == OptLevel::O0 {
        // Without hoisting, handlers that need operands reload them after
        // returning (modeled as a post-dispatch fixup block keyed on the
        // opcode class): only binary/unary opcodes reload.
        let skip2 = b.label();
        let skip1 = b.label();
        b.andi(Reg::T3, Reg::T1, 1); // odd opcodes: unary-ish
        b.bne(Reg::T3, Reg::ZERO, skip1);
        b.ld(Reg::T4, vsp, 0);
        b.ld(Reg::T5, vsp, 8);
        b.add(acc, acc, Reg::T4);
        b.add(acc, acc, Reg::T5);
        b.j(skip2);
        b.bind(skip1);
        b.ld(Reg::T4, vsp, 0);
        b.add(acc, acc, Reg::T4);
        b.bind(skip2);
    }

    // Update the operand stack so later iterations read fresh values.
    b.sd(acc, vsp, 0);
    b.sd(i, vsp, 8);

    b.addi(i, i, 1);
    b.blt(i, n, top);

    b.out(acc);
    b.halt();
    b.build().expect("interp benchmark is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handlers_are_stride_aligned() {
        // Building validates strides via the internal assertion.
        let p = build(OptLevel::O2, 1);
        assert!(p.len() > 8 * STRIDE as usize);
    }
}
