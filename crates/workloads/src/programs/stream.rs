//! `stream` — dense streaming arithmetic (the low end of the dead range).
//!
//! A fused triad `c[k] = a[k] * s + b[k]` over two elements per iteration,
//! where every stored value is later reloaded (within the loop or by the
//! final checksum). The only dead instructions are the classic
//! per-iteration loop-exit flag (consumed only on the final iteration) and
//! the final pass's ripple stores — landing the benchmark near the paper's
//! 3% floor.

use dide_isa::{Program, ProgramBuilder, Reg};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::OptLevel;

const ELEMS: usize = 512;
const BASE_ITERS: i64 = 2000;

pub(crate) fn build(_opt: OptLevel, scale: u32) -> Program {
    // Scheduling has nothing to hoist here; both levels build the same code.
    let mut b = ProgramBuilder::new("stream");

    let mut rng = StdRng::seed_from_u64(0x57E);
    let mut a_base = 0;
    for i in 0..ELEMS {
        let addr = b.data_u64(rng.gen_range(0..1_000_000));
        if i == 0 {
            a_base = addr;
        }
    }
    let b_base = b.data_zeros(ELEMS * 8);
    let c_base = b.data_zeros(ELEMS * 8);

    let (i, n, acc) = (Reg::S0, Reg::S1, Reg::S3);
    let (pa, pb, pc, s, flag) = (Reg::S4, Reg::S5, Reg::S6, Reg::S7, Reg::G4);

    b.li(i, 0);
    b.li(n, BASE_ITERS * i64::from(scale));
    b.li(acc, 0);
    b.li_u64(pa, a_base);
    b.li_u64(pb, b_base);
    b.li_u64(pc, c_base);
    b.li(s, 3);

    // Emits one triad element: c[k] = a[k] * s + b[k], consuming the
    // previous c[k] so the store is always eventually read, and rippling
    // b[k] forward so the b store is read by the next pass.
    let element = |b: &mut ProgramBuilder, lane: i64| {
        b.addi(Reg::T0, i, lane);
        b.andi(Reg::T0, Reg::T0, (ELEMS - 1) as i64);
        b.slli(Reg::T0, Reg::T0, 3);
        b.add(Reg::T1, Reg::T0, pa);
        b.ld(Reg::T2, Reg::T1, 0);
        b.mul(Reg::T2, Reg::T2, s);
        b.add(Reg::T3, Reg::T0, pb);
        b.ld(Reg::T4, Reg::T3, 0);
        b.add(Reg::T2, Reg::T2, Reg::T4);
        b.add(Reg::T5, Reg::T0, pc);
        b.ld(Reg::T6, Reg::T5, 0); // previous pass's c value: keeps it live
        b.add(acc, acc, Reg::T6);
        b.sd(Reg::T2, Reg::T5, 0);
        b.xor(acc, acc, Reg::T2);
        b.addi(Reg::T7, Reg::T2, 1);
        b.sd(Reg::T7, Reg::T3, 0); // ripple b[k] forward
    };

    let top = b.label();
    b.bind(top);
    element(&mut b, 0);
    element(&mut b, 1);
    // Loop-exit flag, recomputed every iteration, consumed after the loop:
    // dead on every iteration but the last.
    b.slt(flag, i, n);
    b.addi(i, i, 2);
    b.blt(i, n, top);

    // The final flag and checksums of b[] and c[] escape via `out`.
    b.out(flag);
    let sum = b.label();
    let (j, ptr_c, ptr_b) = (Reg::T0, Reg::T1, Reg::T5);
    b.li(j, 0);
    b.mv(ptr_c, pc);
    b.mv(ptr_b, pb);
    b.bind(sum);
    b.ld(Reg::T2, ptr_c, 0);
    b.add(acc, acc, Reg::T2);
    b.ld(Reg::T3, ptr_b, 0);
    b.add(acc, acc, Reg::T3);
    b.addi(ptr_c, ptr_c, 8);
    b.addi(ptr_b, ptr_b, 8);
    b.addi(j, j, 1);
    b.li(Reg::T4, ELEMS as i64);
    b.blt(j, Reg::T4, sum);
    b.out(acc);
    b.halt();
    b.build().expect("stream benchmark is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn o0_and_o2_identical() {
        let p0 = build(OptLevel::O0, 1);
        let p2 = build(OptLevel::O2, 1);
        assert_eq!(p0.insts(), p2.insts());
    }
}
