//! `parse` — token classification with call chains (parser-like).
//!
//! Exercises the calling-convention sources of deadness the paper
//! identifies: the `classify` callee saves and restores a callee-saved
//! register that the caller never actually reads again (the entire
//! save/restore chain is transitively dead), and the caller conservatively
//! spills a computed value across the call but reloads it on only half of
//! the iterations.

use dide_isa::{Program, ProgramBuilder, Reg};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::kernels::{epilogue, prologue};
use crate::OptLevel;

const TOKENS: usize = 2048;
const BASE_ITERS: i64 = 2500;

pub(crate) fn build(opt: OptLevel, scale: u32) -> Program {
    let mut b = ProgramBuilder::new(match opt {
        OptLevel::O0 => "parse-O0",
        OptLevel::O2 => "parse-O2",
    });

    // Token stream: mostly-structured token codes 0..16.
    let mut rng = StdRng::seed_from_u64(0xBA5);
    let mut tokens = Vec::with_capacity(TOKENS);
    for i in 0..TOKENS {
        let code: u8 = if i % 3 == 0 { (i % 16) as u8 } else { rng.gen_range(0..16) };
        tokens.push(code);
    }
    let tok_base = b.data_bytes(&tokens);

    let (i, n, acc, tbase) = (Reg::S0, Reg::S1, Reg::S3, Reg::S4);

    let main = b.label();
    b.j(main);

    // fn classify(a0: token) -> a0: class
    // Saves s6 "by convention" and then clobbers it as scratch. The caller
    // never reads s6, so every save/restore pair is dynamically dead.
    let classify = b.label();
    b.bind(classify);
    prologue(&mut b, &[Reg::S6]);
    b.andi(Reg::T0, Reg::A0, 15);
    b.slli(Reg::S6, Reg::A0, 2); // scratch use of the saved register
    b.add(Reg::T0, Reg::T0, Reg::S6);
    b.andi(Reg::A0, Reg::T0, 31);
    epilogue(&mut b, &[Reg::S6]);

    b.bind(main);
    b.li(i, 0);
    b.li(n, BASE_ITERS * i64::from(scale));
    b.li(acc, 0);
    b.li_u64(tbase, tok_base);

    let top = b.label();
    let no_reload = b.label();

    b.bind(top);
    // Fetch the next token.
    b.andi(Reg::T1, i, (TOKENS - 1) as i64);
    b.add(Reg::T1, Reg::T1, tbase);
    b.lbu(Reg::A0, Reg::T1, 0);

    if opt == OptLevel::O2 {
        // Conservative caller-save spill: v = token hash, spilled across the
        // call "in case" — reloaded on only half the iterations.
        b.slli(Reg::T2, Reg::A0, 3);
        b.xor(Reg::T2, Reg::T2, i);
        b.sd(Reg::T2, Reg::SP, -8);
    }

    b.call(classify);
    b.add(acc, acc, Reg::A0); // class is always consumed

    b.andi(Reg::T3, i, 1);
    b.bne(Reg::T3, Reg::ZERO, no_reload);
    if opt == OptLevel::O2 {
        b.ld(Reg::T4, Reg::SP, -8);
    } else {
        // Unspilled at O0: recompute in the consuming block. The token must
        // be re-fetched because the call clobbered a0.
        b.andi(Reg::T4, i, (TOKENS - 1) as i64);
        b.add(Reg::T4, Reg::T4, tbase);
        b.lbu(Reg::T4, Reg::T4, 0);
        b.slli(Reg::T4, Reg::T4, 3);
        b.xor(Reg::T4, Reg::T4, i);
    }
    b.add(acc, acc, Reg::T4);
    b.bind(no_reload);

    b.addi(i, i, 1);
    b.blt(i, n, top);

    b.out(acc);
    b.halt();
    b.build().expect("parse benchmark is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_both_levels() {
        assert!(build(OptLevel::O2, 1).len() > 25);
        assert!(build(OptLevel::O0, 1).len() > 25);
    }
}
