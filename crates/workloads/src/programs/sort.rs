//! `sort` — recursive quicksort (the suite's genuinely recursive program).
//!
//! A Lomuto-partition quicksort over a 512-element array, exercising deep
//! call chains (return-address-stack behaviour), callee-save convention
//! traffic, and — unlike the loop benchmarks — a *data-dependent* partition
//! branch that defeats the branch predictor. At `O2` the swap-address
//! computation is hoisted above the partition test and dies on the
//! not-swapped path; because that path is decided by a ~50/50 branch, the
//! CFI predictor (correctly) struggles here, giving the suite a low-
//! coverage data point like real SPEC inputs do.

use dide_isa::{Program, ProgramBuilder, Reg};

use crate::kernels::{epilogue, lcg_init, lcg_step, prologue, rng_bits};
use crate::OptLevel;

const ELEMS: i64 = 512;

pub(crate) fn build(opt: OptLevel, scale: u32) -> Program {
    let mut b = ProgramBuilder::new(match opt {
        OptLevel::O0 => "sort-O0",
        OptLevel::O2 => "sort-O2",
    });

    let array_base = b.data_zeros(ELEMS as usize * 8);

    let (lo, hi) = (Reg::A0, Reg::A1);
    let base = Reg::G5;
    let (i, j, pivot) = (Reg::T5, Reg::T6, Reg::S6);

    let main = b.label();
    b.j(main);

    // fn qsort(a0 = lo, a1 = hi), array base in g5.
    let qsort = b.label();
    let body = b.label();
    b.bind(qsort);
    b.blt(lo, hi, body);
    b.ret();
    b.bind(body);
    prologue(&mut b, &[Reg::S4, Reg::S5, Reg::S6]);
    b.mv(Reg::S4, lo);
    b.mv(Reg::S5, hi);
    // pivot = a[hi]
    b.slli(Reg::T0, Reg::S5, 3);
    b.add(Reg::T0, Reg::T0, base);
    b.ld(pivot, Reg::T0, 0);
    // i = lo - 1; j = lo
    b.addi(i, Reg::S4, -1);
    b.mv(j, Reg::S4);

    let loop_top = b.label();
    let loop_end = b.label();
    let skip = b.label();
    b.bind(loop_top);
    b.bge(j, Reg::S5, loop_end);
    // t1 = a[j]
    b.slli(Reg::T0, j, 3);
    b.add(Reg::T0, Reg::T0, base);
    b.ld(Reg::T1, Reg::T0, 0);
    if opt == OptLevel::O2 {
        // Hoisted swap-destination address a[i + 1]: dead when a[j] > pivot
        // (a data-dependent, roughly 50/50 branch).
        b.slli(Reg::T3, i, 3);
        b.addi(Reg::T3, Reg::T3, 8);
        b.add(Reg::T3, Reg::T3, base);
    }
    b.blt(pivot, Reg::T1, skip); // a[j] > pivot: no swap
    b.addi(i, i, 1);
    if opt == OptLevel::O0 {
        b.slli(Reg::T3, i, 3);
        b.add(Reg::T3, Reg::T3, base);
    }
    // swap a[i], a[j]
    b.ld(Reg::T4, Reg::T3, 0);
    b.sd(Reg::T4, Reg::T0, 0);
    b.sd(Reg::T1, Reg::T3, 0);
    b.bind(skip);
    b.addi(j, j, 1);
    b.j(loop_top);
    b.bind(loop_end);

    // Place the pivot: swap a[i + 1], a[hi].
    b.addi(i, i, 1);
    b.slli(Reg::T0, i, 3);
    b.add(Reg::T0, Reg::T0, base);
    b.ld(Reg::T1, Reg::T0, 0);
    b.slli(Reg::T2, Reg::S5, 3);
    b.add(Reg::T2, Reg::T2, base);
    b.ld(Reg::T3, Reg::T2, 0);
    b.sd(Reg::T3, Reg::T0, 0);
    b.sd(Reg::T1, Reg::T2, 0);
    // p survives the recursive calls in s6 (pivot value is dead by now).
    b.mv(Reg::S6, i);
    // qsort(lo, p - 1)
    b.mv(lo, Reg::S4);
    b.addi(hi, Reg::S6, -1);
    b.call(qsort);
    // qsort(p + 1, hi)
    b.addi(lo, Reg::S6, 1);
    b.mv(hi, Reg::S5);
    b.call(qsort);
    epilogue(&mut b, &[Reg::S4, Reg::S5, Reg::S6]);

    // --- main ---
    b.bind(main);
    let (round, rounds, acc, lcg) = (Reg::S0, Reg::S1, Reg::S3, Reg::S2);
    b.li(round, 0);
    b.li(rounds, i64::from(scale));
    b.li(acc, 0);
    b.li_u64(base, array_base);
    lcg_init(&mut b, lcg, 0x50_47);

    let round_top = b.label();
    b.bind(round_top);

    // Fill the array with fresh pseudo-random values.
    let fill = b.label();
    b.li(Reg::T0, 0);
    b.bind(fill);
    lcg_step(&mut b, lcg, Reg::T1);
    rng_bits(&mut b, Reg::T2, lcg, 30, 16);
    b.slli(Reg::T3, Reg::T0, 3);
    b.add(Reg::T3, Reg::T3, base);
    b.sd(Reg::T2, Reg::T3, 0);
    b.addi(Reg::T0, Reg::T0, 1);
    b.li(Reg::T4, ELEMS);
    b.blt(Reg::T0, Reg::T4, fill);

    // Sort it.
    b.li(lo, 0);
    b.li(hi, ELEMS - 1);
    b.call(qsort);

    // Verify: accumulate values and count inversions (must be zero).
    let check = b.label();
    let sorted = b.label();
    b.li(Reg::T0, 1); // index
    b.li(Reg::T7, 0); // inversions
    b.bind(check);
    b.slli(Reg::T1, Reg::T0, 3);
    b.add(Reg::T1, Reg::T1, base);
    b.ld(Reg::T2, Reg::T1, 0); // a[k]
    b.ld(Reg::T3, Reg::T1, -8); // a[k-1]
    b.add(acc, acc, Reg::T2);
    b.bge(Reg::T2, Reg::T3, sorted);
    b.addi(Reg::T7, Reg::T7, 1);
    b.bind(sorted);
    b.addi(Reg::T0, Reg::T0, 1);
    b.li(Reg::T4, ELEMS);
    b.blt(Reg::T0, Reg::T4, check);
    b.out(Reg::T7); // inversion count: 0 iff correctly sorted

    b.addi(round, round, 1);
    b.blt(round, rounds, round_top);

    b.out(acc);
    b.halt();
    b.build().expect("sort benchmark is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_both_levels() {
        assert!(build(OptLevel::O2, 1).len() > 60);
        assert!(build(OptLevel::O0, 1).len() > 60);
    }
}
