//! `objstore` — object creation and update with redundant field writes
//! (vortex-like).
//!
//! Objects are "created" with default field values and immediately
//! specialized: two of the default-initializing stores are overwritten
//! before they can ever be read — genuinely dead stores that no scheduling
//! level removes (the `O0`/`O2` difference here is small by design, unlike
//! `expr`). A third field is read back only on every eighth iteration, so
//! most of its writes die too.

use dide_isa::{Program, ProgramBuilder, Reg};

use crate::kernels::{lcg_init, lcg_step, rng_bits};
use crate::OptLevel;

const OBJECTS: usize = 256;
/// Bytes per object record (4 fields of 8 bytes).
const OBJ_BYTES: usize = 32;
const BASE_ITERS: i64 = 3000;

pub(crate) fn build(opt: OptLevel, scale: u32) -> Program {
    let mut b = ProgramBuilder::new(match opt {
        OptLevel::O0 => "objstore-O0",
        OptLevel::O2 => "objstore-O2",
    });

    let heap_base = b.data_zeros(OBJECTS * OBJ_BYTES);

    let (i, n, acc) = (Reg::S0, Reg::S1, Reg::S3);
    let (base, lcg, defaults) = (Reg::S4, Reg::S2, Reg::S5);

    b.li(i, 0);
    b.li(n, BASE_ITERS * i64::from(scale));
    b.li(acc, 0);
    b.li_u64(base, heap_base);
    b.li(defaults, 0x5a5a);
    lcg_init(&mut b, lcg, 0x0B57);

    let top = b.label();
    let no_audit = b.label();

    b.bind(top);
    lcg_step(&mut b, lcg, Reg::T0);
    // Object address.
    rng_bits(&mut b, Reg::T1, lcg, 34, 8);
    b.slli(Reg::T1, Reg::T1, 5);
    b.add(Reg::T1, Reg::T1, base);

    // "Constructor": default-initialize fields 0, 2 and 3.
    b.sd(defaults, Reg::T1, 0); // overwritten below: always dead
    b.sd(defaults, Reg::T1, 16); // read on audit iterations only
    b.sd(i, Reg::T1, 24); // read below: live

    // "Specialize": overwrite fields 0 and 1 with computed values.
    b.xor(Reg::T2, i, lcg);
    b.sd(Reg::T2, Reg::T1, 0);
    b.addi(Reg::T3, i, 42);
    b.sd(Reg::T3, Reg::T1, 8);

    // Use the object: read fields 0 and 3.
    b.ld(Reg::T4, Reg::T1, 0);
    b.add(acc, acc, Reg::T4);
    b.ld(Reg::T5, Reg::T1, 24);
    b.add(acc, acc, Reg::T5);
    b.xor(acc, acc, Reg::T2);
    b.add(acc, acc, lcg);

    if opt == OptLevel::O2 {
        // Hoisted audit checksum, consumed only on audit iterations.
        b.xor(Reg::T6, Reg::T4, Reg::T5);
    }
    // Audit every fourth iteration: read fields 1 and 2 as well.
    b.andi(Reg::T7, i, 3);
    b.bne(Reg::T7, Reg::ZERO, no_audit);
    if opt == OptLevel::O0 {
        b.xor(Reg::T6, Reg::T4, Reg::T5);
    }
    b.ld(Reg::T0, Reg::T1, 8);
    b.add(acc, acc, Reg::T0);
    b.ld(Reg::T0, Reg::T1, 16);
    b.add(acc, acc, Reg::T0);
    b.add(acc, acc, Reg::T6);
    b.bind(no_audit);

    b.addi(i, i, 1);
    b.blt(i, n, top);

    b.out(acc);
    b.halt();
    b.build().expect("objstore benchmark is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_with_heap() {
        let p = build(OptLevel::O2, 1);
        assert_eq!(p.data().len(), OBJECTS * OBJ_BYTES);
    }
}
