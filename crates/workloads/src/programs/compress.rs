//! `compress` — byte-stream compression inner loop (gzip-like).
//!
//! Hashes input bytes into a chained hash table. The table insertions are
//! *naturally* partially dead stores (slots are frequently overwritten
//! before the next probe of that slot), and at `O2` the match-length and
//! distance computations are hoisted above the "emit match?" test that
//! consumes them only on match iterations.

use dide_isa::{Program, ProgramBuilder, Reg};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::OptLevel;

const INPUT_BYTES: usize = 4096;
const TABLE_SLOTS: usize = 256;
const BASE_ITERS: i64 = 4000;

pub(crate) fn build(opt: OptLevel, scale: u32) -> Program {
    let mut b = ProgramBuilder::new(match opt {
        OptLevel::O0 => "compress-O0",
        OptLevel::O2 => "compress-O2",
    });

    // Compressible-ish input: runs of repeated bytes with noise.
    let mut rng = StdRng::seed_from_u64(0xC0);
    let mut input = Vec::with_capacity(INPUT_BYTES);
    let mut current = 0u8;
    for _ in 0..INPUT_BYTES {
        if rng.gen_ratio(1, 6) {
            current = rng.gen();
        }
        input.push(current);
    }
    let in_base = b.data_bytes(&input);
    b.data_align(8);
    let table_base = b.data_zeros(TABLE_SLOTS * 8);

    let (i, n, acc) = (Reg::S0, Reg::S1, Reg::S3);
    let (inp, tab, hash) = (Reg::S4, Reg::S5, Reg::S6);

    b.li(i, 0);
    b.li(n, BASE_ITERS * i64::from(scale));
    b.li(acc, 0);
    b.li_u64(inp, in_base);
    b.li_u64(tab, table_base);
    b.li(hash, 5381);

    let top = b.label();
    let no_match = b.label();

    b.bind(top);
    // Load the next input byte.
    b.andi(Reg::T0, i, (INPUT_BYTES - 1) as i64);
    b.add(Reg::T0, Reg::T0, inp);
    b.lbu(Reg::T1, Reg::T0, 0);

    // Rolling hash (always live: feeds the table address).
    b.slli(Reg::T2, hash, 5);
    b.xor(hash, Reg::T2, Reg::T1);
    b.andi(hash, hash, 0x7fff);

    // Hash-chain maintenance: remember the previous occupant, then insert
    // the current position (the gzip `prev[]` idiom — the loads keep the
    // inserts live).
    b.andi(Reg::T3, hash, (TABLE_SLOTS - 1) as i64);
    b.slli(Reg::T3, Reg::T3, 3);
    b.add(Reg::T3, Reg::T3, tab);
    b.ld(Reg::T7, Reg::T3, 0);
    b.sd(i, Reg::T3, 0);
    b.sub(Reg::T7, i, Reg::T7);
    b.add(acc, acc, Reg::T7);

    if opt == OptLevel::O2 {
        // Hoisted match metadata, consumed only on match iterations.
        b.andi(Reg::T4, Reg::T1, 7); // match length guess
        b.srli(Reg::T5, hash, 3); // distance guess
        b.andi(Reg::T5, Reg::T5, 63);
    }

    // "Emit match" on half the iterations (periodic, predictable).
    b.andi(Reg::T6, i, 1);
    b.bne(Reg::T6, Reg::ZERO, no_match);
    if opt == OptLevel::O0 {
        b.andi(Reg::T4, Reg::T1, 7);
        b.srli(Reg::T5, hash, 3);
        b.andi(Reg::T5, Reg::T5, 63);
    }
    b.add(acc, acc, Reg::T4);
    b.add(acc, acc, Reg::T5);
    b.bind(no_match);

    b.addi(i, i, 1);
    b.blt(i, n, top);

    b.out(acc);
    b.halt();
    b.build().expect("compress benchmark is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_both_levels() {
        assert!(build(OptLevel::O2, 1).len() > 20);
        assert!(build(OptLevel::O0, 1).len() > 20);
    }
}
