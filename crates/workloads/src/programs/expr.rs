//! `expr` — expression-tree evaluation with heavy speculative hoisting
//! (gcc-like). The high end of the paper's 3–16% dead range.
//!
//! Each iteration loads an "expression node" and — at `O2` — eagerly
//! computes three candidate results *before* the operator dispatch, exactly
//! the inter-block code motion a scheduling compiler performs. The dispatch
//! consumes at most one candidate, so the others die; on the
//! no-candidate path even the node load and its address arithmetic become
//! transitively dead.

use dide_isa::{Program, ProgramBuilder, Reg};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::kernels::{lcg_init, lcg_step, rng_bits};
use crate::OptLevel;

const NODES: usize = 256;
const BASE_ITERS: i64 = 4000;

pub(crate) fn build(opt: OptLevel, scale: u32) -> Program {
    let mut b = ProgramBuilder::new(match opt {
        OptLevel::O0 => "expr-O0",
        OptLevel::O2 => "expr-O2",
    });

    // Node table: pseudo-random 64-bit "expression nodes".
    let mut rng = StdRng::seed_from_u64(0xE59);
    let mut node_base = 0;
    for i in 0..NODES {
        let addr = b.data_u64(rng.gen::<u64>());
        if i == 0 {
            node_base = addr;
        }
    }

    let (i, n, lcg, acc, base) = (Reg::S0, Reg::S1, Reg::S2, Reg::S3, Reg::S4);
    // Dispatch constants, loop-invariant.
    let (c3, c6, c7, mul3) = (Reg::G0, Reg::G1, Reg::G2, Reg::G3);

    b.li(i, 0);
    b.li(n, BASE_ITERS * i64::from(scale));
    lcg_init(&mut b, lcg, 0x1234_5678_9abc);
    b.li(acc, 0);
    b.li_u64(base, node_base);
    b.li(c3, 3);
    b.li(c6, 6);
    b.li(c7, 7);
    b.li(mul3, 3);

    let top = b.label();
    let path_a = b.label();
    let path_b = b.label();
    let path_d = b.label();
    let join = b.label();

    b.bind(top);
    lcg_step(&mut b, lcg, Reg::T0);
    // Node index from the RNG high bits; load the node.
    rng_bits(&mut b, Reg::T1, lcg, 33, 8);
    b.slli(Reg::T1, Reg::T1, 3);
    b.add(Reg::T1, Reg::T1, base);
    b.ld(Reg::T2, Reg::T1, 0);

    // Operator selector: periodic (predictable) three-bit pattern.
    b.andi(Reg::T6, i, 7);

    if opt == OptLevel::O2 {
        // Hoisted candidates (the scheduler moved them above the dispatch).
        b.mul(Reg::T3, Reg::T2, mul3); // candidate A (1 inst)
        b.srli(Reg::T4, Reg::T2, 2); // candidate B (2 insts)
        b.andi(Reg::T4, Reg::T4, 0xff);
        b.xor(Reg::T5, Reg::T2, lcg); // candidate C (1 inst)
    }

    // Dispatch: A 3/8, B 3/8, C 1/8, D (no consumer) 1/8.
    b.blt(Reg::T6, c3, path_a);
    b.blt(Reg::T6, c6, path_b);
    b.beq(Reg::T6, c7, path_d);

    // Path C (fallthrough).
    if opt == OptLevel::O0 {
        b.xor(Reg::T5, Reg::T2, lcg);
    }
    b.add(acc, acc, Reg::T5);
    b.j(join);

    b.bind(path_a);
    if opt == OptLevel::O0 {
        b.mul(Reg::T3, Reg::T2, mul3);
    }
    b.add(acc, acc, Reg::T3);
    b.j(join);

    b.bind(path_b);
    if opt == OptLevel::O0 {
        b.srli(Reg::T4, Reg::T2, 2);
        b.andi(Reg::T4, Reg::T4, 0xff);
    }
    b.add(acc, acc, Reg::T4);
    b.j(join);

    b.bind(path_d);
    b.addi(acc, acc, 1);

    b.bind(join);
    // Live epilogue work each iteration.
    b.add(acc, acc, i);
    b.add(acc, acc, Reg::T6);
    b.xor(acc, acc, lcg);
    b.addi(i, i, 1);
    b.blt(i, n, top);

    b.out(acc);
    b.halt();
    b.build().expect("expr benchmark is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_scales() {
        let p1 = build(OptLevel::O2, 1);
        let p0 = build(OptLevel::O0, 1);
        assert!(p1.len() > 30);
        // O2 hoists into the main block: the static program differs.
        assert_ne!(p1.insts(), p0.insts());
    }
}
