//! `bitboard` — 64-bit mask move generation (crafty-like).
//!
//! Chess-engine style bit manipulation: the move mask is always consumed,
//! while the hoisted capture and promotion masks are consumed only on the
//! iterations whose (periodic) phase examines them.

use dide_isa::{Program, ProgramBuilder, Reg};

use crate::kernels::{lcg_init, lcg_step};
use crate::OptLevel;

const BASE_ITERS: i64 = 4000;

pub(crate) fn build(opt: OptLevel, scale: u32) -> Program {
    let mut b = ProgramBuilder::new(match opt {
        OptLevel::O0 => "bitboard-O0",
        OptLevel::O2 => "bitboard-O2",
    });

    let (i, n, acc, lcg) = (Reg::S0, Reg::S1, Reg::S3, Reg::S2);
    let (pieces, occupied, enemy, ones) = (Reg::S4, Reg::S5, Reg::S6, Reg::G0);

    b.li(i, 0);
    b.li(n, BASE_ITERS * i64::from(scale));
    b.li(acc, 0);
    lcg_init(&mut b, lcg, 0xB17B0A2D);
    b.li(pieces, 0x00ff_0000_0000_ff00_u64 as i64);
    b.li(occupied, 0x0f0f_0f0f_f0f0_f0f0_u64 as i64);
    b.li(enemy, 0x5555_aaaa_5555_aaaa_u64 as i64);
    b.li(ones, -1);

    let top = b.label();
    let no_capture = b.label();
    let no_promo = b.label();

    b.bind(top);
    lcg_step(&mut b, lcg, Reg::T0);
    // Evolve the boards (live: loop-carried).
    b.xor(pieces, pieces, lcg);
    b.srli(Reg::T0, occupied, 1);
    b.xor(occupied, occupied, Reg::T0);

    // Move mask: moves = (pieces << 9) & ~occupied. Always consumed.
    b.slli(Reg::T1, pieces, 9);
    b.xor(Reg::T2, occupied, ones); // ~occupied
    b.and(Reg::T3, Reg::T1, Reg::T2);
    b.andi(Reg::T4, Reg::T3, 0xff); // popcount stand-in
    b.add(acc, acc, Reg::T4);

    if opt == OptLevel::O2 {
        // Hoisted capture and promotion masks.
        b.and(Reg::T5, Reg::T3, enemy);
        b.srli(Reg::T6, Reg::T3, 56);
    }
    // Examine captures on even iterations.
    b.andi(Reg::T7, i, 1);
    b.bne(Reg::T7, Reg::ZERO, no_capture);
    if opt == OptLevel::O0 {
        b.and(Reg::T5, Reg::T3, enemy);
    }
    b.add(acc, acc, Reg::T5);
    b.bind(no_capture);
    // Examine promotions every fourth iteration.
    b.andi(Reg::T7, i, 3);
    b.bne(Reg::T7, Reg::ZERO, no_promo);
    if opt == OptLevel::O0 {
        b.srli(Reg::T6, Reg::T3, 56);
    }
    b.add(acc, acc, Reg::T6);
    b.bind(no_promo);

    b.addi(i, i, 1);
    b.blt(i, n, top);

    b.out(acc);
    b.halt();
    b.build().expect("bitboard benchmark is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_both_levels() {
        assert!(build(OptLevel::O2, 1).len() > 25);
        assert!(build(OptLevel::O0, 1).len() > 25);
    }
}
