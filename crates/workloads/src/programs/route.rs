//! `route` — grid routing with conditional bend penalties (vpr-like).
//!
//! A maze-router inner loop: every step computes the Manhattan cost toward
//! the target (live), while at `O2` the bend-penalty computation is hoisted
//! above the "did the direction change?" test and dies on straight moves.

use dide_isa::{Program, ProgramBuilder, Reg};

use crate::kernels::{lcg_init, lcg_step, rng_bits};
use crate::OptLevel;

const BASE_ITERS: i64 = 3500;

/// Emits `dst = |a - b|` using the shift-xor-sub idiom (clobbers `tmp`).
fn emit_abs_diff(b: &mut ProgramBuilder, dst: Reg, a: Reg, bb: Reg, tmp: Reg) {
    b.sub(dst, a, bb);
    b.srai(tmp, dst, 63);
    b.xor(dst, dst, tmp);
    b.sub(dst, dst, tmp);
}

pub(crate) fn build(opt: OptLevel, scale: u32) -> Program {
    let mut b = ProgramBuilder::new(match opt {
        OptLevel::O0 => "route-O0",
        OptLevel::O2 => "route-O2",
    });

    let (i, n, acc, lcg) = (Reg::S0, Reg::S1, Reg::S3, Reg::S2);
    let (x, y, tx, ty, dir) = (Reg::S4, Reg::S5, Reg::S6, Reg::S7, Reg::G0);

    b.li(i, 0);
    b.li(n, BASE_ITERS * i64::from(scale));
    b.li(acc, 0);
    lcg_init(&mut b, lcg, 0x40_77E);
    b.li(x, 0).li(y, 0);
    b.li(tx, 100).li(ty, 100);
    b.li(dir, 0);

    let top = b.label();
    let straight = b.label();

    b.bind(top);
    lcg_step(&mut b, lcg, Reg::T0);
    // Step direction: low-period pattern plus noise bit -> mostly
    // predictable direction changes.
    b.andi(Reg::T1, i, 1);
    rng_bits(&mut b, Reg::T2, lcg, 40, 1);
    b.xor(Reg::T1, Reg::T1, Reg::T2);
    // Move: x += 1 or y += 1.
    let move_y = b.label();
    let moved = b.label();
    b.bne(Reg::T1, Reg::ZERO, move_y);
    b.addi(x, x, 1);
    b.j(moved);
    b.bind(move_y);
    b.addi(y, y, 1);
    b.bind(moved);

    // Manhattan cost toward the target: always consumed.
    emit_abs_diff(&mut b, Reg::T3, x, tx, Reg::T0);
    emit_abs_diff(&mut b, Reg::T4, y, ty, Reg::T0);
    b.add(Reg::T5, Reg::T3, Reg::T4);
    b.add(acc, acc, Reg::T5);

    if opt == OptLevel::O2 {
        // Hoisted bend penalty: dead whenever the move was straight.
        b.slli(Reg::T6, Reg::T5, 1);
        b.addi(Reg::T6, Reg::T6, 13);
        b.andi(Reg::T6, Reg::T6, 0xff);
    }
    // Bend iff the direction changed.
    b.beq(Reg::T1, dir, straight);
    if opt == OptLevel::O0 {
        b.slli(Reg::T6, Reg::T5, 1);
        b.addi(Reg::T6, Reg::T6, 13);
        b.andi(Reg::T6, Reg::T6, 0xff);
    }
    b.add(acc, acc, Reg::T6);
    b.bind(straight);
    b.mv(dir, Reg::T1);

    // Wrap the walker so coordinates stay bounded.
    b.andi(x, x, 0x3ff);
    b.andi(y, y, 0x3ff);

    b.addi(i, i, 1);
    b.blt(i, n, top);

    b.out(acc);
    b.halt();
    b.build().expect("route benchmark is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_both_levels() {
        assert!(build(OptLevel::O2, 1).len() > 30);
        assert!(build(OptLevel::O0, 1).len() > 30);
    }
}
