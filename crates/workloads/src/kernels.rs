//! Shared code-emission idioms used by all benchmarks.

use dide_isa::{ProgramBuilder, Reg};

/// Multiplier of the in-program LCG (Knuth's MMIX constants).
pub(crate) const LCG_MUL: i64 = 6364136223846793005;
/// Increment of the in-program LCG.
pub(crate) const LCG_ADD: i64 = 1442695040888963407;

/// Seeds the in-program random state register.
pub(crate) fn lcg_init(b: &mut ProgramBuilder, state: Reg, seed: i64) {
    b.li(state, seed);
}

/// Advances the LCG: `state = state * MUL + ADD` (clobbers `tmp`).
///
/// Emitting the multiplier load every step mirrors constant-rematerialization
/// in real compiled code and keeps the step self-contained.
pub(crate) fn lcg_step(b: &mut ProgramBuilder, state: Reg, tmp: Reg) {
    b.li(tmp, LCG_MUL);
    b.mul(state, state, tmp);
    b.addi(state, state, LCG_ADD);
}

/// Extracts `bits` pseudo-random bits into `dst`: `(state >> shift) & mask`.
///
/// Uses the LCG's high bits (shift ≥ 24 recommended); low bits of an LCG are
/// weak.
pub(crate) fn rng_bits(b: &mut ProgramBuilder, dst: Reg, state: Reg, shift: i64, bits: u32) {
    b.srli(dst, state, shift);
    b.andi(dst, dst, (1i64 << bits) - 1);
}

/// Emits a standard function prologue: pushes `ra` and the given
/// callee-saved registers. The frame is `8 * (saved.len() + 1)` bytes.
///
/// This save/restore traffic is a real-world source of dead stores: saves
/// of registers the callee never actually clobbers are overwritten by the
/// next frame without ever being loaded.
pub(crate) fn prologue(b: &mut ProgramBuilder, saved: &[Reg]) {
    let frame = 8 * (saved.len() as i64 + 1);
    b.addi(Reg::SP, Reg::SP, -frame);
    b.sd(Reg::RA, Reg::SP, 0);
    for (i, &r) in saved.iter().enumerate() {
        b.sd(r, Reg::SP, 8 * (i as i64 + 1));
    }
}

/// Emits the matching epilogue for [`prologue`] and returns.
pub(crate) fn epilogue(b: &mut ProgramBuilder, saved: &[Reg]) {
    let frame = 8 * (saved.len() as i64 + 1);
    for (i, &r) in saved.iter().enumerate() {
        b.ld(r, Reg::SP, 8 * (i as i64 + 1));
    }
    b.ld(Reg::RA, Reg::SP, 0);
    b.addi(Reg::SP, Reg::SP, frame);
    b.ret();
}

#[cfg(test)]
mod tests {
    use super::*;
    use dide_isa::ProgramBuilder;

    #[test]
    fn lcg_emits_three_instructions() {
        let mut b = ProgramBuilder::new("t");
        lcg_init(&mut b, Reg::S0, 42);
        let before = b.here();
        lcg_step(&mut b, Reg::S0, Reg::T0);
        assert_eq!(b.here() - before, 3);
        b.halt();
        assert!(b.build().is_ok());
    }

    #[test]
    fn prologue_epilogue_balance() {
        let mut b = ProgramBuilder::new("t");
        let f = b.label();
        b.call(f);
        b.halt();
        b.bind(f);
        prologue(&mut b, &[Reg::S0, Reg::S1]);
        epilogue(&mut b, &[Reg::S0, Reg::S1]);
        let p = b.build().unwrap();
        // 2 (call+halt) + 1 addi + 3 sd + 3 ld + 1 addi + 1 ret
        assert_eq!(p.len(), 11);
    }

    #[test]
    fn rng_bits_mask() {
        let mut b = ProgramBuilder::new("t");
        rng_bits(&mut b, Reg::T0, Reg::S0, 32, 4);
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.insts()[1].imm, 15);
    }
}
