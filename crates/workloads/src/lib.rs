//! Synthetic SPECint-style benchmark suite for the DIDE reproduction.
//!
//! The paper characterized SPEC CPU2000 Alpha binaries. Neither those
//! binaries nor an Alpha toolchain is available here, so this crate provides
//! ten synthetic benchmarks written directly in SIR that reproduce the
//! *mechanisms* that create dynamically dead instructions in compiled code:
//!
//! * **compiler instruction scheduling** — values hoisted above branches and
//!   consumed on only some paths ([`OptLevel::O2`] hoists, [`OptLevel::O0`]
//!   sinks the computation into the consuming arm; experiment E5 compares
//!   the two);
//! * **calling conventions** — callee-save/restore and caller-save spill
//!   traffic that is frequently overwritten before being read;
//! * **loop-exit flag computations** — per-iteration values consumed only on
//!   the final iteration;
//! * **redundant stores** — object fields initialized and then overwritten.
//!
//! The suite spans the paper's reported 3–16% dead-instruction range. All
//! programs are deterministic (in-program LCG randomness with fixed seeds)
//! and scale linearly with the `scale` parameter.
//!
//! # Example
//!
//! ```
//! use dide_workloads::{suite, OptLevel};
//! use dide_emu::Emulator;
//!
//! let spec = &suite()[0];
//! let program = spec.build(OptLevel::O2, 1);
//! let trace = Emulator::new(&program).run()?;
//! assert!(trace.len() > 1_000);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gen;
mod kernels;
mod programs;

pub use gen::{random_program, GenConfig};
pub use programs::{asm_suite, find_workload, suite, BenchKind, WorkloadSpec};

/// Compiler optimization level emulated by the workload generator.
///
/// `O2` performs the inter-block code motion (hoisting) that the paper
/// identifies as a major source of *partially dead* static instructions;
/// `O0` keeps every computation inside the block that consumes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OptLevel {
    /// No speculative code motion.
    O0,
    /// Aggressive hoisting above branches (the paper's default world).
    O2,
}

impl OptLevel {
    /// Both levels, for sweeps.
    pub const ALL: [OptLevel; 2] = [OptLevel::O0, OptLevel::O2];
}

impl std::fmt::Display for OptLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OptLevel::O0 => f.write_str("O0"),
            OptLevel::O2 => f.write_str("O2"),
        }
    }
}
