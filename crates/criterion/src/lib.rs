//! Offline drop-in replacement for the subset of [`criterion`] used by this
//! workspace's benches.
//!
//! The build environment has no network access to crates.io, so the real
//! `criterion` crate cannot be fetched. This shim keeps `cargo bench`
//! working with the same bench sources: it runs each registered function a
//! configurable number of times, reports median wall-clock per iteration,
//! and derives throughput from [`Throughput::Elements`]/[`Throughput::Bytes`].
//! There is no statistical outlier analysis, warm-up tuning, HTML report,
//! or baseline comparison.
//!
//! [`criterion`]: https://crates.io/crates/criterion

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export mirroring `criterion::black_box` (std's is the real thing).
pub use std::hint::black_box;

/// Entry point handed to every benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into(), sample_size: 20, throughput: None }
    }
}

/// Per-iteration work amount used to derive a rate from the measured time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// A named group of benchmarks sharing sample settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares the per-iteration work amount for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs and reports one benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher { samples: Vec::with_capacity(self.sample_size) };
        // One untimed warm-up sample, then the recorded ones.
        f(&mut bencher);
        bencher.samples.clear();
        for _ in 0..self.sample_size {
            f(&mut bencher);
        }
        let mut per_iter: Vec<Duration> = bencher.samples;
        per_iter.sort_unstable();
        let median = per_iter[per_iter.len() / 2];
        let (lo, hi) = (per_iter[0], per_iter[per_iter.len() - 1]);
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => rate_suffix(n, median, "elem/s"),
            Some(Throughput::Bytes(n)) => rate_suffix(n, median, "B/s"),
            None => String::new(),
        };
        println!(
            "{}/{id}  time: [{} {} {}]{rate}",
            self.name,
            fmt_duration(lo),
            fmt_duration(median),
            fmt_duration(hi),
        );
        self
    }

    /// Ends the group (kept for source compatibility; reporting is eager).
    pub fn finish(self) {}
}

/// Times the body the bench function hands to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Measures one sample of `f`, keeping its result live via `black_box`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.samples.push(start.elapsed());
    }
}

fn rate_suffix(amount: u64, time: Duration, unit: &str) -> String {
    let secs = time.as_secs_f64();
    if secs <= 0.0 {
        return String::new();
    }
    format!("  thrpt: {:.3e} {unit}", amount as f64 / secs)
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

/// Declares a bench group function calling each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the bench binary's `main`, running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_without_panicking() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3).throughput(Throughput::Elements(10));
        let mut runs = 0u32;
        g.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
                runs
            });
        });
        g.finish();
        assert_eq!(runs, 4, "one warm-up + three samples");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(2)), "2.000 µs");
        assert_eq!(fmt_duration(Duration::from_millis(3)), "3.000 ms");
        assert_eq!(fmt_duration(Duration::from_secs(1)), "1.000 s");
    }
}
