//! Property-based tests for the emulator substrate: the sparse memory is a
//! faithful byte store, and the shared ALU semantics agree with native
//! Rust arithmetic.

use dide_emu::{semantics, Memory};
use dide_isa::Opcode;
use proptest::prelude::*;

proptest! {
    #[test]
    fn memory_roundtrips_any_width(
        addr in 0x1000u64..u64::MAX / 2,
        value: u64,
        len in 1u64..=8,
    ) {
        let mut m = Memory::new();
        m.write_le(addr, len, value);
        let mask = if len == 8 { u64::MAX } else { (1u64 << (len * 8)) - 1 };
        prop_assert_eq!(m.read_le(addr, len), value & mask);
    }

    #[test]
    fn memory_writes_do_not_bleed(
        addr in 0x1000u64..0xffff_0000u64,
        value: u64,
    ) {
        let mut m = Memory::new();
        m.write_le(addr, 8, value);
        prop_assert_eq!(m.read_u8(addr.wrapping_sub(1)), 0);
        prop_assert_eq!(m.read_u8(addr + 8), 0);
    }

    #[test]
    fn alu_matches_native_semantics(a: u64, b: u64) {
        prop_assert_eq!(semantics::alu_rr(Opcode::Add, a, b), a.wrapping_add(b));
        prop_assert_eq!(semantics::alu_rr(Opcode::Sub, a, b), a.wrapping_sub(b));
        prop_assert_eq!(semantics::alu_rr(Opcode::Xor, a, b), a ^ b);
        prop_assert_eq!(semantics::alu_rr(Opcode::Sltu, a, b), u64::from(a < b));
        prop_assert_eq!(
            semantics::alu_rr(Opcode::Slt, a, b),
            u64::from((a as i64) < (b as i64))
        );
    }

    #[test]
    fn shifts_mask_their_amount(a: u64, amount: u64) {
        prop_assert_eq!(
            semantics::alu_rr(Opcode::Sll, a, amount),
            a.wrapping_shl((amount & 63) as u32)
        );
        prop_assert_eq!(
            semantics::alu_rr(Opcode::Sra, a, amount),
            ((a as i64) >> (amount & 63)) as u64
        );
    }

    #[test]
    fn division_never_panics(a: u64, b: u64) {
        let _ = semantics::alu_rr(Opcode::Div, a, b);
        let _ = semantics::alu_rr(Opcode::Rem, a, b);
    }

    #[test]
    fn sign_extend_is_idempotent(value: u64, len in 1u64..=8) {
        let once = semantics::sign_extend(value, len);
        prop_assert_eq!(semantics::sign_extend(once, len), once);
        // Extending the full width is the identity.
        prop_assert_eq!(semantics::sign_extend(value, 8), value);
    }
}
