//! Proves the streaming paths never clone the [`Program`].
//!
//! `Program::clone_count()` is process-wide, so this test lives alone in
//! its own integration-test binary: no other test can clone a program
//! behind its back and pollute the counter.

use dide_emu::{Emulator, TraceStream};
use dide_isa::{Program, ProgramBuilder, Reg};

fn looping_program(iters: i64) -> Program {
    let mut b = ProgramBuilder::new("loop");
    b.li(Reg::T0, 0);
    b.li(Reg::T1, iters);
    let top = b.label();
    b.bind(top);
    b.sw(Reg::T0, Reg::SP, -4);
    b.lw(Reg::T2, Reg::SP, -4);
    b.addi(Reg::T0, Reg::T0, 1);
    b.blt(Reg::T0, Reg::T1, top);
    b.out(Reg::T2);
    b.halt();
    b.build().unwrap()
}

#[test]
fn streaming_never_clones_the_program() {
    let p = looping_program(400);
    let before = Program::clone_count();

    // Push-style: many epochs through one consumer.
    let mut chunks = 0u64;
    let summary = Emulator::new(&p).run_streamed(64, |_| chunks += 1).unwrap();
    assert!(chunks > 10, "the run must actually span many epochs (got {chunks})");
    assert_eq!(summary.epochs, chunks);

    // Pull-style: sliding window with recycling.
    let mut stream = TraceStream::new(&p, 64);
    let mut seq = 0u64;
    while stream.get(seq).is_some() {
        seq += 1;
        stream.release_before(seq.saturating_sub(128));
    }
    assert_eq!(Some(seq), stream.total_len());

    assert_eq!(
        Program::clone_count(),
        before,
        "streaming consumers borrow the program; no per-epoch clones"
    );

    // The materializing path clones exactly once (into the returned Trace).
    let trace = Emulator::new(&p).run().unwrap();
    assert_eq!(Program::clone_count(), before + 1);
    assert_eq!(trace.len() as u64, summary.len);
}
