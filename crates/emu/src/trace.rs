//! Dynamic trace container and summary statistics.

use std::fmt;

use dide_isa::Program;

use crate::dyninst::DynInst;

/// Whole-run counters derived from a [`Trace`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total retired dynamic instructions.
    pub total: u64,
    /// Dynamic conditional branches.
    pub cond_branches: u64,
    /// Dynamic taken conditional branches.
    pub taken_branches: u64,
    /// Dynamic loads.
    pub loads: u64,
    /// Dynamic stores.
    pub stores: u64,
    /// Dynamic instructions that write an architectural register.
    pub reg_writers: u64,
    /// Dynamic instructions that produce a value (register write or store) —
    /// the paper's denominator candidates for deadness.
    pub value_producers: u64,
    /// Dynamic calls/returns/indirect jumps (`jal`/`jalr`).
    pub jumps: u64,
}

impl dide_obs::Observe for TraceSummary {
    fn observe(&self, scope: &mut dide_obs::Scope<'_>) {
        scope.counter("total", self.total);
        scope.counter("cond_branches", self.cond_branches);
        scope.counter("taken_branches", self.taken_branches);
        scope.counter("loads", self.loads);
        scope.counter("stores", self.stores);
        scope.counter("reg_writers", self.reg_writers);
        scope.counter("value_producers", self.value_producers);
        scope.counter("jumps", self.jumps);
    }
}

impl fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "total instructions : {}", self.total)?;
        writeln!(f, "cond branches      : {} ({} taken)", self.cond_branches, self.taken_branches)?;
        writeln!(f, "loads / stores     : {} / {}", self.loads, self.stores)?;
        writeln!(f, "register writers   : {}", self.reg_writers)?;
        writeln!(f, "value producers    : {}", self.value_producers)?;
        write!(f, "jumps              : {}", self.jumps)
    }
}

/// The committed-path dynamic instruction stream of one program run,
/// together with the program's observable outputs.
#[derive(Debug, Clone)]
pub struct Trace {
    program: Program,
    records: Vec<DynInst>,
    outputs: Vec<u64>,
}

impl Trace {
    /// Assembles a trace from its parts. Intended for the emulator and for
    /// synthetic traces in tests.
    #[must_use]
    pub fn from_parts(program: Program, records: Vec<DynInst>, outputs: Vec<u64>) -> Trace {
        debug_assert!(records.iter().enumerate().all(|(i, r)| r.seq == i as u64));
        Trace { program, records, outputs }
    }

    /// The program that produced this trace.
    #[must_use]
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The retired dynamic instructions, in program order.
    #[must_use]
    pub fn records(&self) -> &[DynInst] {
        &self.records
    }

    /// The values emitted by `out` instructions, in order.
    #[must_use]
    pub fn outputs(&self) -> &[u64] {
        &self.outputs
    }

    /// Number of retired dynamic instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates over the records.
    pub fn iter(&self) -> std::slice::Iter<'_, DynInst> {
        self.records.iter()
    }

    /// Computes whole-run counters.
    ///
    /// One `match` on [`OpcodeKind`](dide_isa::OpcodeKind) per record: the
    /// summary runs over every record in several experiments, so the
    /// per-category predicates (`is_load`, `is_store`, ... — each its own
    /// kind dispatch) are folded into a single dispatch.
    #[must_use]
    pub fn summary(&self) -> TraceSummary {
        use dide_isa::OpcodeKind;
        let mut s = TraceSummary { total: self.records.len() as u64, ..TraceSummary::default() };
        for r in &self.records {
            // Kinds with a destination register count as writers (and value
            // producers) unless the destination is the zero register.
            let writes_reg = !r.rd.is_zero();
            match r.op.kind() {
                OpcodeKind::AluRR | OpcodeKind::AluRI | OpcodeKind::LoadImm => {
                    s.reg_writers += u64::from(writes_reg);
                    s.value_producers += u64::from(writes_reg);
                }
                OpcodeKind::Load { .. } => {
                    s.loads += 1;
                    s.reg_writers += u64::from(writes_reg);
                    s.value_producers += u64::from(writes_reg);
                }
                OpcodeKind::Store { .. } => {
                    s.stores += 1;
                    s.value_producers += 1;
                }
                OpcodeKind::Branch(_) => {
                    s.cond_branches += 1;
                    s.taken_branches += u64::from(r.taken());
                }
                OpcodeKind::Jal | OpcodeKind::Jalr => {
                    s.jumps += 1;
                    s.reg_writers += u64::from(writes_reg);
                    s.value_producers += u64::from(writes_reg);
                }
                OpcodeKind::Out | OpcodeKind::Halt | OpcodeKind::Nop => {}
            }
        }
        s
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a DynInst;
    type IntoIter = std::slice::Iter<'a, DynInst>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emulator::Emulator;
    use dide_isa::{ProgramBuilder, Reg};

    fn sample_trace() -> Trace {
        let mut b = ProgramBuilder::new("sample");
        b.li(Reg::T0, 0);
        b.li(Reg::T1, 3);
        let top = b.label();
        b.bind(top);
        b.addi(Reg::T0, Reg::T0, 1);
        b.sd(Reg::T0, Reg::SP, -8);
        b.ld(Reg::T2, Reg::SP, -8);
        b.blt(Reg::T0, Reg::T1, top);
        b.out(Reg::T2);
        b.halt();
        Emulator::new(&b.build().unwrap()).run().unwrap()
    }

    #[test]
    fn summary_counts() {
        let t = sample_trace();
        let s = t.summary();
        assert_eq!(s.total, t.len() as u64);
        assert_eq!(s.cond_branches, 3);
        assert_eq!(s.taken_branches, 2);
        assert_eq!(s.loads, 3);
        assert_eq!(s.stores, 3);
        assert_eq!(s.jumps, 0);
        assert!(s.reg_writers >= 2 + 3 + 3);
        assert_eq!(s.value_producers, s.reg_writers + s.stores);
    }

    #[test]
    fn outputs_captured() {
        let t = sample_trace();
        assert_eq!(t.outputs(), &[3]);
    }

    #[test]
    fn records_are_dense() {
        let t = sample_trace();
        for (i, r) in t.iter().enumerate() {
            assert_eq!(r.seq, i as u64);
        }
    }

    #[test]
    fn summary_matches_per_record_predicates() {
        // The single-dispatch summary must agree with the (slower)
        // per-predicate definitions it replaced.
        let t = sample_trace();
        let s = t.summary();
        let count = |p: &dyn Fn(&crate::DynInst) -> bool| t.iter().filter(|r| p(r)).count() as u64;
        assert_eq!(s.loads, count(&|r| r.op.is_load()));
        assert_eq!(s.stores, count(&|r| r.op.is_store()));
        assert_eq!(s.cond_branches, count(&|r| r.is_cond_branch()));
        assert_eq!(s.taken_branches, count(&|r| r.is_cond_branch() && r.taken()));
        assert_eq!(s.reg_writers, count(&|r| r.writes_register()));
        assert_eq!(s.value_producers, count(&|r| r.produces_value()));
        assert_eq!(
            s.jumps,
            count(&|r| matches!(
                r.op.kind(),
                dide_isa::OpcodeKind::Jal | dide_isa::OpcodeKind::Jalr
            ))
        );
    }

    #[test]
    fn summary_display_mentions_totals() {
        let t = sample_trace();
        let text = t.summary().to_string();
        assert!(text.contains("total instructions"));
    }
}
