//! Paged shadow tables: the shared fast-path substrate for byte-addressed
//! sparse state.
//!
//! Both the emulator's data [`Memory`](crate::Memory) (`u8` cells) and the
//! oracle analysis's last-writer table (`u64` cells, one per byte address)
//! face the same access pattern: a huge sparse 64-bit address space touched
//! through small (1–8 byte) accesses with strong spatial locality. The seed
//! implementations paid one `HashMap` probe *per byte*; a [`PagedShadow`]
//! pays at most one probe *per access* — and usually none:
//!
//! * cells live in lazily allocated 4 KiB-cell pages, so an access that
//!   stays inside one page (every aligned 1/2/4/8-byte access does) resolves
//!   the page once and then indexes a plain slice;
//! * a one-entry page-handle cache short-circuits the page lookup entirely
//!   for the common same-page-as-last-time case, turning the hot loop into
//!   `compare + index`;
//! * pages are stored in a dense `Vec` with a side `HashMap` from page
//!   number to slot, so the handle cache is a plain index, no lifetimes or
//!   unsafe required.
//!
//! Accesses that cross a page boundary (possible only for unaligned wide
//! accesses) take a byte-at-a-time fallback; [`PagedShadow::crosses_page`]
//! is the cheap test callers use to pick the path.

use std::cell::Cell;
use std::collections::HashMap;

/// log2 of the page size in cells.
pub const PAGE_BITS: u32 = 12;
/// Cells per page (4096).
pub const PAGE_CELLS: usize = 1 << PAGE_BITS;
/// Mask extracting the in-page offset from an address.
pub const PAGE_MASK: u64 = (PAGE_CELLS as u64) - 1;

/// Sentinel page number for the empty handle cache: no real page has this
/// number because page numbers are addresses shifted right by `PAGE_BITS`.
const NO_PAGE: u64 = u64::MAX;

/// A sparse table of `T` cells over the full 64-bit address space, organized
/// as lazily allocated pages of [`PAGE_CELLS`] cells.
///
/// Absent cells read as `T::default()`. See the [module docs](self) for the
/// performance rationale.
#[derive(Debug, Clone)]
pub struct PagedShadow<T> {
    /// Dense page storage; never shrinks.
    pages: Vec<Box<[T; PAGE_CELLS]>>,
    /// Page number → slot in `pages`.
    index: HashMap<u64, u32>,
    /// Last resolved `(page number, slot)`, shared by reads and writes.
    cache: Cell<(u64, u32)>,
}

impl<T: Copy + Default> Default for PagedShadow<T> {
    fn default() -> Self {
        PagedShadow::new()
    }
}

impl<T: Copy + Default> PagedShadow<T> {
    /// Creates an empty shadow table.
    #[must_use]
    pub fn new() -> PagedShadow<T> {
        PagedShadow { pages: Vec::new(), index: HashMap::new(), cache: Cell::new((NO_PAGE, 0)) }
    }

    /// The in-page cell offset of `addr`.
    #[inline]
    #[must_use]
    pub fn offset(addr: u64) -> usize {
        (addr & PAGE_MASK) as usize
    }

    /// Whether an access of `len` cells starting at `addr` crosses a page
    /// boundary (and therefore needs the cell-at-a-time fallback).
    #[inline]
    #[must_use]
    pub fn crosses_page(addr: u64, len: u64) -> bool {
        (addr & PAGE_MASK) + len > PAGE_CELLS as u64
    }

    /// The page holding `addr`, if it has been materialized.
    #[inline]
    pub fn page(&self, addr: u64) -> Option<&[T; PAGE_CELLS]> {
        let pno = addr >> PAGE_BITS;
        let (cached_pno, cached_slot) = self.cache.get();
        if cached_pno == pno {
            return Some(&self.pages[cached_slot as usize]);
        }
        let &slot = self.index.get(&pno)?;
        self.cache.set((pno, slot));
        Some(&self.pages[slot as usize])
    }

    /// The page holding `addr`, materializing it (zero/default-filled) on
    /// first touch.
    #[inline]
    pub fn page_mut(&mut self, addr: u64) -> &mut [T; PAGE_CELLS] {
        let pno = addr >> PAGE_BITS;
        let (cached_pno, cached_slot) = self.cache.get();
        let slot = if cached_pno == pno {
            cached_slot
        } else {
            let slot = match self.index.get(&pno) {
                Some(&slot) => slot,
                None => {
                    let slot =
                        u32::try_from(self.pages.len()).expect("shadow page count fits in u32");
                    self.pages.push(Box::new([T::default(); PAGE_CELLS]));
                    self.index.insert(pno, slot);
                    slot
                }
            };
            self.cache.set((pno, slot));
            slot
        };
        &mut self.pages[slot as usize]
    }

    /// Reads the cell at `addr`; absent cells read as `T::default()`.
    #[inline]
    #[must_use]
    pub fn get(&self, addr: u64) -> T {
        self.page(addr).map_or_else(T::default, |p| p[Self::offset(addr)])
    }

    /// Writes the cell at `addr`.
    #[inline]
    pub fn set(&mut self, addr: u64, value: T) {
        self.page_mut(addr)[Self::offset(addr)] = value;
    }

    /// The `len` cells starting at `addr` as one slice, when the run does
    /// not cross a page boundary and the page exists. `None` means every
    /// cell in the run still holds `T::default()` (page not materialized);
    /// callers must use the cell-at-a-time fallback for page-crossing runs.
    #[inline]
    pub fn span(&self, addr: u64, len: u64) -> Option<&[T]> {
        debug_assert!(!Self::crosses_page(addr, len));
        let off = Self::offset(addr);
        self.page(addr).map(|p| &p[off..off + len as usize])
    }

    /// Mutable access to the `len` cells starting at `addr`, materializing
    /// the page. The run must not cross a page boundary.
    #[inline]
    pub fn span_mut(&mut self, addr: u64, len: u64) -> &mut [T] {
        debug_assert!(!Self::crosses_page(addr, len));
        let off = Self::offset(addr);
        &mut self.page_mut(addr)[off..off + len as usize]
    }

    /// Number of materialized pages (for capacity diagnostics).
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absent_cells_read_default() {
        let s: PagedShadow<u64> = PagedShadow::new();
        assert_eq!(s.get(0), 0);
        assert_eq!(s.get(u64::MAX), 0);
        assert!(s.page(0x5000).is_none());
        assert_eq!(s.resident_pages(), 0);
    }

    #[test]
    fn set_get_roundtrip_and_lazy_pages() {
        let mut s: PagedShadow<u64> = PagedShadow::new();
        s.set(0x1234, 7);
        s.set(0xdead_beef, 9);
        assert_eq!(s.get(0x1234), 7);
        assert_eq!(s.get(0x1235), 0);
        assert_eq!(s.get(0xdead_beef), 9);
        assert_eq!(s.resident_pages(), 2);
    }

    #[test]
    fn page_crossing_detection() {
        assert!(!PagedShadow::<u8>::crosses_page(0x1000, 8));
        assert!(!PagedShadow::<u8>::crosses_page(0x1ff8, 8));
        assert!(PagedShadow::<u8>::crosses_page(0x1ff9, 8));
        assert!(PagedShadow::<u8>::crosses_page(0x1fff, 2));
        assert!(!PagedShadow::<u8>::crosses_page(0x1fff, 1));
    }

    #[test]
    fn spans_read_and_write_within_a_page() {
        let mut s: PagedShadow<u32> = PagedShadow::new();
        assert!(s.span(0x4000, 8).is_none(), "span of an absent page is None");
        s.span_mut(0x4000, 4).copy_from_slice(&[1, 2, 3, 4]);
        assert_eq!(s.span(0x4000, 6).unwrap(), &[1, 2, 3, 4, 0, 0]);
        assert_eq!(s.get(0x4003), 4);
    }

    #[test]
    fn handle_cache_survives_interleaved_pages() {
        let mut s: PagedShadow<u8> = PagedShadow::new();
        // Ping-pong between two pages; the one-entry cache must stay correct.
        for i in 0..200u64 {
            s.set(0x1000 + i, i as u8);
            s.set(0x9000 + i, (i + 1) as u8);
        }
        for i in 0..200u64 {
            assert_eq!(s.get(0x1000 + i), i as u8);
            assert_eq!(s.get(0x9000 + i), (i + 1) as u8);
        }
        assert_eq!(s.resident_pages(), 2);
    }

    #[test]
    fn clone_is_independent() {
        let mut a: PagedShadow<u8> = PagedShadow::new();
        a.set(0x2000, 5);
        let mut b = a.clone();
        b.set(0x2000, 9);
        assert_eq!(a.get(0x2000), 5);
        assert_eq!(b.get(0x2000), 9);
    }

    #[test]
    fn top_of_address_space_is_addressable() {
        let mut s: PagedShadow<u8> = PagedShadow::new();
        s.set(u64::MAX, 0xff);
        assert_eq!(s.get(u64::MAX), 0xff);
        assert_eq!(s.get(u64::MAX - 1), 0);
    }
}
