//! Dynamic instruction records.

use dide_isa::{Inst, MemWidth, Opcode, Reg, SourceIter};

/// A memory access performed by a dynamic load or store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemAccess {
    /// Starting byte address.
    pub addr: u64,
    /// Access width.
    pub width: MemWidth,
}

impl MemAccess {
    /// Iterates over the byte addresses this access touches.
    pub fn bytes(self) -> impl Iterator<Item = u64> {
        (0..self.width.bytes()).map(move |i| self.addr.wrapping_add(i))
    }

    /// Whether the access overlaps `other` by at least one byte.
    ///
    /// Compares inclusive last-byte addresses, saturating at `u64::MAX`:
    /// an access whose byte range would wrap past the top of the address
    /// space is treated as ending there. The emulator faults wrapping
    /// accesses before they reach a trace, so the clamp only affects
    /// synthetic records, where it keeps the predicate total instead of
    /// panicking in debug builds.
    #[must_use]
    pub fn overlaps(self, other: MemAccess) -> bool {
        let a_last = self.addr.saturating_add(self.width.bytes() - 1);
        let b_last = other.addr.saturating_add(other.width.bytes() - 1);
        self.addr <= b_last && other.addr <= a_last
    }
}

/// Flag bit: the dynamic instruction was a taken control transfer.
const FLAG_TAKEN: u8 = 1 << 3;
/// Mask for the memory-width code in the flags byte (`0` = no access,
/// `1..=4` = B1/B2/B4/B8).
const WIDTH_MASK: u8 = 0b111;

/// One retired dynamic instruction.
///
/// `seq` numbers are dense: the `i`-th record of a [`Trace`](crate::Trace)
/// has `seq == i`.
///
/// The record is deliberately packed to 40 bytes (pinned by a test): traces
/// run to tens of millions of records and the streaming pipeline keeps
/// several epochs of them resident, so every byte here is multiplied by
/// the epoch budget. The static operand fields (`op`, `rd`, `rs1`, `rs2`)
/// are carried inline, but the *immediate* is not — consumers that need it
/// (replay, disassembly) look the static instruction up by `index` in the
/// owning [`Program`](dide_isa::Program). The memory access and
/// taken-branch bit are niche-packed into a single flags byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynInst {
    /// Position in the dynamic instruction stream (dense, from 0).
    pub seq: u64,
    /// Value produced into the destination register (0 when there is none);
    /// for stores, the value stored.
    pub result: u64,
    /// Starting byte address of the memory access (meaningful only when the
    /// flags byte carries a width code).
    mem_addr: u64,
    /// Static instruction index (the PC, in instruction units).
    pub index: u32,
    /// Index of the next instruction that actually executed.
    pub next_index: u32,
    /// Operation.
    pub op: Opcode,
    /// Destination register field.
    pub rd: Reg,
    /// First source register field.
    pub rs1: Reg,
    /// Second source register field.
    pub rs2: Reg,
    /// Packed width code (bits 0-2) and taken bit (bit 3).
    flags: u8,
}

impl DynInst {
    /// Builds a record from the executed static instruction plus the
    /// dynamic facts the emulator observed.
    #[must_use]
    pub fn new(
        seq: u64,
        index: u32,
        inst: Inst,
        next_index: u32,
        taken: bool,
        mem: Option<MemAccess>,
        result: u64,
    ) -> DynInst {
        let width_code = match mem.map(|m| m.width) {
            None => 0,
            Some(MemWidth::B1) => 1,
            Some(MemWidth::B2) => 2,
            Some(MemWidth::B4) => 3,
            Some(MemWidth::B8) => 4,
        };
        DynInst {
            seq,
            result,
            mem_addr: mem.map_or(0, |m| m.addr),
            index,
            next_index,
            op: inst.op,
            rd: inst.rd,
            rs1: inst.rs1,
            rs2: inst.rs2,
            flags: width_code | if taken { FLAG_TAKEN } else { 0 },
        }
    }

    /// For loads and stores: the access performed.
    #[inline]
    #[must_use]
    pub fn mem(&self) -> Option<MemAccess> {
        let width = match self.flags & WIDTH_MASK {
            0 => return None,
            1 => MemWidth::B1,
            2 => MemWidth::B2,
            3 => MemWidth::B4,
            _ => MemWidth::B8,
        };
        Some(MemAccess { addr: self.mem_addr, width })
    }

    /// For conditional branches (and jumps): whether the control transfer
    /// was taken.
    #[inline]
    #[must_use]
    pub fn taken(&self) -> bool {
        self.flags & FLAG_TAKEN != 0
    }

    /// The destination register this record *architecturally wrote*,
    /// i.e. excluding writes to the zero register.
    #[inline]
    #[must_use]
    pub fn dest(&self) -> Option<Reg> {
        (self.op.has_dest() && !self.rd.is_zero()).then_some(self.rd)
    }

    /// Source registers read, excluding the zero register (which is not a
    /// real data dependence).
    #[inline]
    #[must_use]
    pub fn sources(&self) -> SourceIter {
        // The immediate does not participate in operand classification, so
        // a zero-imm reconstruction gives the same answer as the original.
        Inst::new(self.op, self.rd, self.rs1, self.rs2, 0).sources()
    }

    /// Whether this dynamic instruction is a conditional branch.
    #[must_use]
    pub fn is_cond_branch(&self) -> bool {
        self.op.is_cond_branch()
    }

    /// Whether this dynamic instruction wrote an architectural register
    /// (excludes zero-register writes).
    #[must_use]
    pub fn writes_register(&self) -> bool {
        self.dest().is_some()
    }

    /// Whether this instruction produces a *value* a later instruction could
    /// consume: a register write or a memory store. Only these can be
    /// dynamically dead in the paper's sense.
    #[must_use]
    pub fn produces_value(&self) -> bool {
        self.writes_register() || self.op.is_store()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dide_isa::{Opcode, Reg};

    fn di(inst: Inst) -> DynInst {
        DynInst::new(0, 0, inst, 1, false, None, 0)
    }

    #[test]
    fn record_is_40_bytes() {
        // Streaming memory budgets are sized in units of this struct; a
        // regression here silently doubles every epoch's footprint.
        assert_eq!(std::mem::size_of::<DynInst>(), 40);
    }

    #[test]
    fn mem_access_round_trips_through_flags() {
        let inst = Inst::new(Opcode::Lw, Reg::T1, Reg::T0, Reg::ZERO, 0);
        for width in [MemWidth::B1, MemWidth::B2, MemWidth::B4, MemWidth::B8] {
            let acc = MemAccess { addr: 0xdead_0000, width };
            let r = DynInst::new(3, 7, inst, 8, false, Some(acc), 0);
            assert_eq!(r.mem(), Some(acc));
        }
        assert_eq!(di(inst).mem(), None);
    }

    #[test]
    fn taken_round_trips_through_flags() {
        let br = Inst::new(Opcode::Beq, Reg::ZERO, Reg::T0, Reg::T1, 9);
        let t = DynInst::new(0, 0, br, 9, true, None, 0);
        assert!(t.taken());
        assert!(!di(br).taken());
    }

    #[test]
    fn operand_accessors_match_the_static_instruction() {
        let add = Inst::new(Opcode::Add, Reg::T0, Reg::T1, Reg::T2, 0);
        let r = di(add);
        assert_eq!(r.dest(), add.dest());
        assert_eq!(r.sources().collect::<Vec<_>>(), add.sources().collect::<Vec<_>>());
        let store = Inst::new(Opcode::Sd, Reg::ZERO, Reg::SP, Reg::T0, -8);
        let r = di(store);
        assert_eq!(r.dest(), None);
        assert_eq!(r.sources().collect::<Vec<_>>(), store.sources().collect::<Vec<_>>());
    }

    #[test]
    fn mem_access_bytes() {
        let a = MemAccess { addr: 0x100, width: MemWidth::B4 };
        assert_eq!(a.bytes().collect::<Vec<_>>(), vec![0x100, 0x101, 0x102, 0x103]);
    }

    #[test]
    fn mem_access_overlap() {
        let a = MemAccess { addr: 0x100, width: MemWidth::B4 };
        let b = MemAccess { addr: 0x102, width: MemWidth::B8 };
        let c = MemAccess { addr: 0x104, width: MemWidth::B4 };
        assert!(a.overlaps(b));
        assert!(b.overlaps(a));
        assert!(!a.overlaps(c));
    }

    #[test]
    fn overlap_at_address_space_boundary_does_not_panic() {
        // `addr + width` would overflow u64 here; the predicate must stay
        // total (saturating) instead of panicking in debug builds.
        let top = MemAccess { addr: u64::MAX - 1, width: MemWidth::B8 };
        let near = MemAccess { addr: u64::MAX - 4, width: MemWidth::B4 };
        let low = MemAccess { addr: 0x1000, width: MemWidth::B8 };
        assert!(top.overlaps(top));
        assert!(top.overlaps(near));
        assert!(near.overlaps(top));
        assert!(!top.overlaps(low));
        assert!(!low.overlaps(top));
        // Exactly at the limit: end saturates to u64::MAX, still exclusive.
        let last = MemAccess { addr: u64::MAX, width: MemWidth::B1 };
        assert!(last.overlaps(top));
        assert!(!last.overlaps(near));
    }

    #[test]
    fn produces_value_classification() {
        let add = di(Inst::new(Opcode::Add, Reg::T0, Reg::T1, Reg::T2, 0));
        assert!(add.produces_value());
        let add_zero = di(Inst::new(Opcode::Add, Reg::ZERO, Reg::T1, Reg::T2, 0));
        assert!(!add_zero.produces_value());
        let store = di(Inst::new(Opcode::Sd, Reg::ZERO, Reg::SP, Reg::T0, 0));
        assert!(store.produces_value());
        let branch = di(Inst::new(Opcode::Beq, Reg::ZERO, Reg::T0, Reg::T1, 0));
        assert!(!branch.produces_value());
        assert!(branch.is_cond_branch());
    }
}
