//! Dynamic instruction records.

use dide_isa::{Inst, MemWidth};

/// A memory access performed by a dynamic load or store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemAccess {
    /// Starting byte address.
    pub addr: u64,
    /// Access width.
    pub width: MemWidth,
}

impl MemAccess {
    /// Iterates over the byte addresses this access touches.
    pub fn bytes(self) -> impl Iterator<Item = u64> {
        (0..self.width.bytes()).map(move |i| self.addr.wrapping_add(i))
    }

    /// Whether the access overlaps `other` by at least one byte.
    ///
    /// Compares inclusive last-byte addresses, saturating at `u64::MAX`:
    /// an access whose byte range would wrap past the top of the address
    /// space is treated as ending there. The emulator faults wrapping
    /// accesses before they reach a trace, so the clamp only affects
    /// synthetic records, where it keeps the predicate total instead of
    /// panicking in debug builds.
    #[must_use]
    pub fn overlaps(self, other: MemAccess) -> bool {
        let a_last = self.addr.saturating_add(self.width.bytes() - 1);
        let b_last = other.addr.saturating_add(other.width.bytes() - 1);
        self.addr <= b_last && other.addr <= a_last
    }
}

/// One retired dynamic instruction.
///
/// `seq` numbers are dense: the `i`-th record of a [`Trace`](crate::Trace)
/// has `seq == i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynInst {
    /// Position in the dynamic instruction stream (dense, from 0).
    pub seq: u64,
    /// Static instruction index (the PC, in instruction units).
    pub index: u32,
    /// The static instruction executed.
    pub inst: Inst,
    /// Index of the next instruction that actually executed.
    pub next_index: u32,
    /// For conditional branches: whether the branch was taken.
    pub taken: bool,
    /// For loads and stores: the access performed.
    pub mem: Option<MemAccess>,
    /// Value produced into the destination register (0 when there is none);
    /// for stores, the value stored.
    pub result: u64,
}

impl DynInst {
    /// Whether this dynamic instruction is a conditional branch.
    #[must_use]
    pub fn is_cond_branch(&self) -> bool {
        self.inst.op.is_cond_branch()
    }

    /// Whether this dynamic instruction wrote an architectural register
    /// (excludes zero-register writes).
    #[must_use]
    pub fn writes_register(&self) -> bool {
        self.inst.dest().is_some()
    }

    /// Whether this instruction produces a *value* a later instruction could
    /// consume: a register write or a memory store. Only these can be
    /// dynamically dead in the paper's sense.
    #[must_use]
    pub fn produces_value(&self) -> bool {
        self.writes_register() || self.inst.op.is_store()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dide_isa::{Opcode, Reg};

    fn di(inst: Inst) -> DynInst {
        DynInst { seq: 0, index: 0, inst, next_index: 1, taken: false, mem: None, result: 0 }
    }

    #[test]
    fn mem_access_bytes() {
        let a = MemAccess { addr: 0x100, width: MemWidth::B4 };
        assert_eq!(a.bytes().collect::<Vec<_>>(), vec![0x100, 0x101, 0x102, 0x103]);
    }

    #[test]
    fn mem_access_overlap() {
        let a = MemAccess { addr: 0x100, width: MemWidth::B4 };
        let b = MemAccess { addr: 0x102, width: MemWidth::B8 };
        let c = MemAccess { addr: 0x104, width: MemWidth::B4 };
        assert!(a.overlaps(b));
        assert!(b.overlaps(a));
        assert!(!a.overlaps(c));
    }

    #[test]
    fn overlap_at_address_space_boundary_does_not_panic() {
        // `addr + width` would overflow u64 here; the predicate must stay
        // total (saturating) instead of panicking in debug builds.
        let top = MemAccess { addr: u64::MAX - 1, width: MemWidth::B8 };
        let near = MemAccess { addr: u64::MAX - 4, width: MemWidth::B4 };
        let low = MemAccess { addr: 0x1000, width: MemWidth::B8 };
        assert!(top.overlaps(top));
        assert!(top.overlaps(near));
        assert!(near.overlaps(top));
        assert!(!top.overlaps(low));
        assert!(!low.overlaps(top));
        // Exactly at the limit: end saturates to u64::MAX, still exclusive.
        let last = MemAccess { addr: u64::MAX, width: MemWidth::B1 };
        assert!(last.overlaps(top));
        assert!(!last.overlaps(near));
    }

    #[test]
    fn produces_value_classification() {
        let add = di(Inst::new(Opcode::Add, Reg::T0, Reg::T1, Reg::T2, 0));
        assert!(add.produces_value());
        let add_zero = di(Inst::new(Opcode::Add, Reg::ZERO, Reg::T1, Reg::T2, 0));
        assert!(!add_zero.produces_value());
        let store = di(Inst::new(Opcode::Sd, Reg::ZERO, Reg::SP, Reg::T0, 0));
        assert!(store.produces_value());
        let branch = di(Inst::new(Opcode::Beq, Reg::ZERO, Reg::T0, Reg::T1, 0));
        assert!(!branch.produces_value());
        assert!(branch.is_cond_branch());
    }
}
