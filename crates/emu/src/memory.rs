//! Sparse byte-addressed memory.

use crate::shadow::PagedShadow;

/// Sparse, page-granular byte-addressed memory.
///
/// Untouched bytes read as zero, which keeps synthetic workloads simple and
/// deterministic. Addresses below [`Memory::GUARD_LIMIT`] form a guard region
/// that traps on access (a stand-in for null-pointer protection); guesses
/// that escape the workload's data structures are caught loudly instead of
/// silently reading zeros.
///
/// Storage is a [`PagedShadow<u8>`]: whole accesses that stay inside one
/// 4 KiB page (every aligned 1/2/4/8-byte access does) resolve their page
/// once and move data with a single slice copy, and a one-entry page-handle
/// cache removes even that lookup for consecutive same-page accesses. Only
/// unaligned page-crossing accesses fall back to byte-at-a-time movement.
#[derive(Debug, Clone, Default)]
pub struct Memory {
    data: PagedShadow<u8>,
}

impl Memory {
    /// Accesses at addresses below this limit trap.
    pub const GUARD_LIMIT: u64 = 0x1000;

    /// Creates an empty memory.
    #[must_use]
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Whether `addr..addr + len` intersects the guard region or wraps the
    /// address space.
    #[must_use]
    pub fn faults(addr: u64, len: u64) -> bool {
        addr < Memory::GUARD_LIMIT || addr.checked_add(len).is_none()
    }

    /// Reads one byte. Untouched memory reads as zero.
    #[must_use]
    pub fn read_u8(&self, addr: u64) -> u8 {
        self.data.get(addr)
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        self.data.set(addr, value);
    }

    /// Reads `N` little-endian bytes starting at `addr`.
    #[must_use]
    pub fn read_le(&self, addr: u64, len: u64) -> u64 {
        debug_assert!(len <= 8);
        if !PagedShadow::<u8>::crosses_page(addr, len) {
            // Fast path: the whole access lives in one page — one page
            // resolution and one word-sized copy, aligned or not.
            return match self.data.span(addr, len) {
                None => 0,
                Some(bytes) => {
                    let mut word = [0u8; 8];
                    word[..bytes.len()].copy_from_slice(bytes);
                    u64::from_le_bytes(word)
                }
            };
        }
        let mut out = 0u64;
        for i in 0..len {
            out |= u64::from(self.data.get(addr.wrapping_add(i))) << (8 * i);
        }
        out
    }

    /// Writes the low `len` bytes of `value` little-endian starting at `addr`.
    pub fn write_le(&mut self, addr: u64, len: u64, value: u64) {
        debug_assert!(len <= 8);
        let word = value.to_le_bytes();
        if !PagedShadow::<u8>::crosses_page(addr, len) {
            self.data.span_mut(addr, len).copy_from_slice(&word[..len as usize]);
            return;
        }
        for (i, &b) in word.iter().enumerate().take(len as usize) {
            self.data.set(addr.wrapping_add(i as u64), b);
        }
    }

    /// Copies `bytes` into memory starting at `addr`.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        // Page-sized runs: each chunk is one page resolution + memcpy.
        let mut addr = addr;
        let mut rest = bytes;
        while !rest.is_empty() {
            let room = crate::shadow::PAGE_CELLS - PagedShadow::<u8>::offset(addr);
            let run = room.min(rest.len());
            self.data.span_mut(addr, run as u64).copy_from_slice(&rest[..run]);
            addr += run as u64;
            rest = &rest[run..];
        }
    }

    /// Number of resident pages (for capacity diagnostics).
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.data.resident_pages()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_reads_zero() {
        let m = Memory::new();
        assert_eq!(m.read_u8(0x1000_0000), 0);
        assert_eq!(m.read_le(0x1000_0000, 8), 0);
    }

    #[test]
    fn byte_roundtrip() {
        let mut m = Memory::new();
        m.write_u8(0x1234_5678, 0xab);
        assert_eq!(m.read_u8(0x1234_5678), 0xab);
        assert_eq!(m.read_u8(0x1234_5679), 0);
    }

    #[test]
    fn little_endian_roundtrip() {
        let mut m = Memory::new();
        m.write_le(0x2000, 8, 0x0123_4567_89ab_cdef);
        assert_eq!(m.read_le(0x2000, 8), 0x0123_4567_89ab_cdef);
        assert_eq!(m.read_le(0x2000, 4), 0x89ab_cdef);
        assert_eq!(m.read_u8(0x2000), 0xef);
    }

    #[test]
    fn unaligned_within_page_roundtrip() {
        let mut m = Memory::new();
        m.write_le(0x2003, 8, 0x1122_3344_5566_7788);
        assert_eq!(m.read_le(0x2003, 8), 0x1122_3344_5566_7788);
        assert_eq!(m.read_le(0x2005, 2), 0x5566);
        assert_eq!(m.read_u8(0x200a), 0x11);
    }

    #[test]
    fn writes_straddle_pages() {
        let mut m = Memory::new();
        let addr = (1 << 12) - 4; // 4 bytes before a page boundary
        m.write_le(addr, 8, u64::MAX);
        assert_eq!(m.read_le(addr, 8), u64::MAX);
        assert!(m.resident_pages() >= 2);
    }

    #[test]
    fn page_crossing_value_is_split_correctly() {
        let mut m = Memory::new();
        let addr = 0x3000 - 3; // 3 bytes in the low page, 5 in the high one
        m.write_le(addr, 8, 0x8877_6655_4433_2211);
        assert_eq!(m.read_u8(addr), 0x11);
        assert_eq!(m.read_u8(0x3000 - 1), 0x33);
        assert_eq!(m.read_u8(0x3000), 0x44);
        assert_eq!(m.read_u8(0x3004), 0x88);
        // Both byte-wise and whole reads agree across the boundary.
        assert_eq!(m.read_le(addr, 8), 0x8877_6655_4433_2211);
        assert_eq!(m.read_le(0x3000 - 1, 2), 0x4433);
    }

    #[test]
    fn narrow_writes_partially_overwrite_wide_one() {
        let mut m = Memory::new();
        m.write_le(0x4000, 8, u64::MAX);
        m.write_le(0x4000, 4, 0x0a0b_0c0d); // low half
        m.write_le(0x4006, 2, 0x1112); // top two bytes
        assert_eq!(m.read_le(0x4000, 8), 0x1112_ffff_0a0b_0c0d);
    }

    #[test]
    fn guard_region() {
        assert!(Memory::faults(0, 1));
        assert!(Memory::faults(0xfff, 1));
        assert!(!Memory::faults(0x1000, 8));
        assert!(Memory::faults(u64::MAX - 3, 8));
    }

    #[test]
    fn write_bytes_bulk() {
        let mut m = Memory::new();
        m.write_bytes(0x3000, &[1, 2, 3, 4]);
        assert_eq!(m.read_le(0x3000, 4), 0x0403_0201);
    }

    #[test]
    fn write_bytes_across_many_pages() {
        let mut m = Memory::new();
        let blob: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        m.write_bytes(0x7ff0, &blob);
        for (i, &b) in blob.iter().enumerate() {
            assert_eq!(m.read_u8(0x7ff0 + i as u64), b, "byte {i}");
        }
        assert!(m.resident_pages() >= 3);
    }
}
