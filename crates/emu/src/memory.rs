//! Sparse byte-addressed memory.

use std::collections::HashMap;

const PAGE_BITS: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_BITS;

/// Sparse, page-granular byte-addressed memory.
///
/// Untouched bytes read as zero, which keeps synthetic workloads simple and
/// deterministic. Addresses below [`Memory::GUARD_LIMIT`] form a guard region
/// that traps on access (a stand-in for null-pointer protection); guesses
/// that escape the workload's data structures are caught loudly instead of
/// silently reading zeros.
#[derive(Debug, Clone, Default)]
pub struct Memory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl Memory {
    /// Accesses at addresses below this limit trap.
    pub const GUARD_LIMIT: u64 = 0x1000;

    /// Creates an empty memory.
    #[must_use]
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Whether `addr..addr + len` intersects the guard region or wraps the
    /// address space.
    #[must_use]
    pub fn faults(addr: u64, len: u64) -> bool {
        addr < Memory::GUARD_LIMIT || addr.checked_add(len).is_none()
    }

    fn page(&self, addr: u64) -> Option<&[u8; PAGE_SIZE]> {
        self.pages.get(&(addr >> PAGE_BITS)).map(|b| &**b)
    }

    fn page_mut(&mut self, addr: u64) -> &mut [u8; PAGE_SIZE] {
        self.pages.entry(addr >> PAGE_BITS).or_insert_with(|| Box::new([0u8; PAGE_SIZE]))
    }

    /// Reads one byte. Untouched memory reads as zero.
    #[must_use]
    pub fn read_u8(&self, addr: u64) -> u8 {
        self.page(addr).map_or(0, |p| p[(addr as usize) & (PAGE_SIZE - 1)])
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        self.page_mut(addr)[(addr as usize) & (PAGE_SIZE - 1)] = value;
    }

    /// Reads `N` little-endian bytes starting at `addr`.
    #[must_use]
    pub fn read_le(&self, addr: u64, len: u64) -> u64 {
        debug_assert!(len <= 8);
        let mut out = 0u64;
        for i in 0..len {
            out |= u64::from(self.read_u8(addr.wrapping_add(i))) << (8 * i);
        }
        out
    }

    /// Writes the low `len` bytes of `value` little-endian starting at `addr`.
    pub fn write_le(&mut self, addr: u64, len: u64, value: u64) {
        debug_assert!(len <= 8);
        for i in 0..len {
            self.write_u8(addr.wrapping_add(i), (value >> (8 * i)) as u8);
        }
    }

    /// Copies `bytes` into memory starting at `addr`.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.write_u8(addr + i as u64, b);
        }
    }

    /// Number of resident pages (for capacity diagnostics).
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_reads_zero() {
        let m = Memory::new();
        assert_eq!(m.read_u8(0x1000_0000), 0);
        assert_eq!(m.read_le(0x1000_0000, 8), 0);
    }

    #[test]
    fn byte_roundtrip() {
        let mut m = Memory::new();
        m.write_u8(0x1234_5678, 0xab);
        assert_eq!(m.read_u8(0x1234_5678), 0xab);
        assert_eq!(m.read_u8(0x1234_5679), 0);
    }

    #[test]
    fn little_endian_roundtrip() {
        let mut m = Memory::new();
        m.write_le(0x2000, 8, 0x0123_4567_89ab_cdef);
        assert_eq!(m.read_le(0x2000, 8), 0x0123_4567_89ab_cdef);
        assert_eq!(m.read_le(0x2000, 4), 0x89ab_cdef);
        assert_eq!(m.read_u8(0x2000), 0xef);
    }

    #[test]
    fn writes_straddle_pages() {
        let mut m = Memory::new();
        let addr = (1 << 12) - 4; // 4 bytes before a page boundary
        m.write_le(addr, 8, u64::MAX);
        assert_eq!(m.read_le(addr, 8), u64::MAX);
        assert!(m.resident_pages() >= 2);
    }

    #[test]
    fn guard_region() {
        assert!(Memory::faults(0, 1));
        assert!(Memory::faults(0xfff, 1));
        assert!(!Memory::faults(0x1000, 8));
        assert!(Memory::faults(u64::MAX - 3, 8));
    }

    #[test]
    fn write_bytes_bulk() {
        let mut m = Memory::new();
        m.write_bytes(0x3000, &[1, 2, 3, 4]);
        assert_eq!(m.read_le(0x3000, 4), 0x0403_0201);
    }
}
