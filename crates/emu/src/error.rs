//! Emulator error type.

use std::fmt;

/// Architectural trap or resource-limit error raised during emulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmuError {
    /// Control transferred outside the text segment.
    BadFetch {
        /// The invalid instruction index.
        index: u64,
        /// Dynamic instruction count at the time of the fault.
        at_seq: u64,
    },
    /// A load or store touched the guard region near address zero (or
    /// wrapped the address space).
    MemFault {
        /// Faulting byte address.
        addr: u64,
        /// Dynamic instruction count at the time of the fault.
        at_seq: u64,
    },
    /// The configured dynamic-instruction budget was exhausted before `halt`.
    StepLimit {
        /// The configured limit.
        limit: u64,
    },
}

impl fmt::Display for EmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmuError::BadFetch { index, at_seq } => {
                write!(f, "fetch from invalid instruction index {index} at seq {at_seq}")
            }
            EmuError::MemFault { addr, at_seq } => {
                write!(f, "memory fault at address {addr:#x} at seq {at_seq}")
            }
            EmuError::StepLimit { limit } => {
                write!(f, "dynamic instruction limit of {limit} exhausted before halt")
            }
        }
    }
}

impl std::error::Error for EmuError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = EmuError::MemFault { addr: 0x10, at_seq: 42 };
        let s = e.to_string();
        assert!(s.contains("0x10"));
        assert!(s.contains("42"));
        assert!(!EmuError::StepLimit { limit: 7 }.to_string().is_empty());
        assert!(!EmuError::BadFetch { index: 1, at_seq: 2 }.to_string().is_empty());
    }
}
