//! Pure instruction semantics, shared by the emulator and by trace
//! replayers (e.g. the deadness oracle's self-check in `dide-analysis`).

use dide_isa::Opcode;

/// Evaluates a register–register ALU operation.
///
/// # Panics
///
/// Panics if `op` is not an ALU register–register opcode.
#[must_use]
pub fn alu_rr(op: Opcode, a: u64, b: u64) -> u64 {
    match op {
        Opcode::Add => a.wrapping_add(b),
        Opcode::Sub => a.wrapping_sub(b),
        Opcode::And => a & b,
        Opcode::Or => a | b,
        Opcode::Xor => a ^ b,
        Opcode::Sll => a.wrapping_shl((b & 63) as u32),
        Opcode::Srl => a.wrapping_shr((b & 63) as u32),
        Opcode::Sra => ((a as i64).wrapping_shr((b & 63) as u32)) as u64,
        Opcode::Mul => a.wrapping_mul(b),
        Opcode::Div => {
            let (a, b) = (a as i64, b as i64);
            if b == 0 {
                u64::MAX
            } else {
                a.wrapping_div(b) as u64
            }
        }
        Opcode::Rem => {
            let (a, b) = (a as i64, b as i64);
            if b == 0 {
                a as u64
            } else {
                a.wrapping_rem(b) as u64
            }
        }
        Opcode::Slt => u64::from((a as i64) < (b as i64)),
        Opcode::Sltu => u64::from(a < b),
        _ => unreachable!("not an ALU r-r opcode: {op:?}"),
    }
}

/// Evaluates a register–immediate ALU operation.
///
/// # Panics
///
/// Panics if `op` is not an ALU register–immediate opcode.
#[must_use]
pub fn alu_ri(op: Opcode, a: u64, imm: i64) -> u64 {
    let b = imm as u64;
    match op {
        Opcode::Addi => a.wrapping_add(b),
        Opcode::Andi => a & b,
        Opcode::Ori => a | b,
        Opcode::Xori => a ^ b,
        Opcode::Slli => a.wrapping_shl((b & 63) as u32),
        Opcode::Srli => a.wrapping_shr((b & 63) as u32),
        Opcode::Srai => ((a as i64).wrapping_shr((b & 63) as u32)) as u64,
        Opcode::Slti => u64::from((a as i64) < imm),
        _ => unreachable!("not an ALU r-i opcode: {op:?}"),
    }
}

/// Sign-extends the low `bytes * 8` bits of `value` to 64 bits.
#[must_use]
pub fn sign_extend(value: u64, bytes: u64) -> u64 {
    let bits = bytes * 8;
    if bits >= 64 {
        return value;
    }
    let shift = 64 - bits;
    (((value << shift) as i64) >> shift) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrapping_arithmetic() {
        assert_eq!(alu_rr(Opcode::Add, u64::MAX, 1), 0);
        assert_eq!(alu_rr(Opcode::Mul, 1 << 63, 2), 0);
        assert_eq!(alu_ri(Opcode::Addi, 0, -1), u64::MAX);
    }

    #[test]
    fn division_edge_cases() {
        assert_eq!(alu_rr(Opcode::Div, 7, 0), u64::MAX);
        assert_eq!(alu_rr(Opcode::Rem, 7, 0), 7);
        // i64::MIN / -1 wraps rather than trapping.
        assert_eq!(alu_rr(Opcode::Div, i64::MIN as u64, u64::MAX), i64::MIN as u64);
    }

    #[test]
    fn sign_extension() {
        assert_eq!(sign_extend(0xff, 1), u64::MAX);
        assert_eq!(sign_extend(0x7f, 1), 0x7f);
        assert_eq!(sign_extend(0x8000, 2), 0xffff_ffff_ffff_8000);
        assert_eq!(sign_extend(0x1234, 8), 0x1234);
    }
}
