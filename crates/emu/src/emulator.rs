//! The architectural interpreter.
//!
//! Two consumption models share one stepping core:
//!
//! * [`Emulator::run`] — execute to `halt` and materialize the full
//!   [`Trace`] (the original whole-trace path);
//! * [`Emulator::run_streamed`] / [`TraceStream`] — execute in fixed-size
//!   *epochs* of [`DynInst`] records, handing each epoch to the consumer
//!   and reusing the buffers, so peak retained trace memory is bounded by
//!   a few epochs regardless of trace length.

use std::collections::VecDeque;

use dide_isa::{BranchCond, Inst, OpcodeKind, Program, Reg, STACK_BASE};

use crate::dyninst::{DynInst, MemAccess};
use crate::error::EmuError;
use crate::memory::Memory;
use crate::trace::Trace;

/// Default epoch length (records per [`TraceChunk`]) for streaming runs.
pub const DEFAULT_EPOCH_LEN: usize = 65_536;

/// Resource limits and initial conditions for an emulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmulatorConfig {
    /// Maximum dynamic instructions before the run aborts with
    /// [`EmuError::StepLimit`].
    pub max_steps: u64,
    /// Initial stack pointer.
    pub stack_base: u64,
}

impl Default for EmulatorConfig {
    fn default() -> Self {
        EmulatorConfig { max_steps: 50_000_000, stack_base: STACK_BASE }
    }
}

/// One epoch of consecutive dynamic instructions from a streaming run.
///
/// Record `i` of the chunk has `seq == base + i`. Every chunk except
/// possibly the last holds exactly the configured epoch length; chunks are
/// never empty.
#[derive(Debug)]
pub struct TraceChunk {
    base: u64,
    records: Vec<DynInst>,
    last: bool,
}

impl TraceChunk {
    /// Sequence number of the first record in the chunk.
    #[must_use]
    pub fn base(&self) -> u64 {
        self.base
    }

    /// The records, in sequence order.
    #[must_use]
    pub fn records(&self) -> &[DynInst] {
        &self.records
    }

    /// Number of records in the chunk.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the chunk is empty (never true for chunks a consumer sees).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// One past the sequence number of the last record.
    #[must_use]
    pub fn end(&self) -> u64 {
        self.base + self.records.len() as u64
    }

    /// Whether this is the final chunk of the run (the program halted).
    #[must_use]
    pub fn is_last(&self) -> bool {
        self.last
    }
}

/// What a completed [`Emulator::run_streamed`] run produced besides the
/// epochs themselves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamSummary {
    /// Total dynamic instructions retired.
    pub len: u64,
    /// Number of epochs delivered to the consumer.
    pub epochs: u64,
    /// Values written by `out`, in order.
    pub outputs: Vec<u64>,
}

/// Architectural interpreter for SIR programs.
///
/// Executes a program to completion and captures the full dynamic trace.
/// See the [crate docs](crate) for an example.
#[derive(Debug)]
pub struct Emulator<'p> {
    program: &'p Program,
    config: EmulatorConfig,
    regs: [u64; Reg::COUNT],
    memory: Memory,
    pc: u32,
    steps: u64,
    outputs: Vec<u64>,
    halted: bool,
}

impl<'p> Emulator<'p> {
    /// Creates an emulator with default limits.
    #[must_use]
    pub fn new(program: &'p Program) -> Emulator<'p> {
        Emulator::with_config(program, EmulatorConfig::default())
    }

    /// Creates an emulator with explicit limits.
    #[must_use]
    pub fn with_config(program: &'p Program, config: EmulatorConfig) -> Emulator<'p> {
        let mut memory = Memory::new();
        memory.write_bytes(dide_isa::DATA_BASE, program.data());
        let mut regs = [0u64; Reg::COUNT];
        regs[Reg::SP.index()] = config.stack_base;
        regs[Reg::FP.index()] = config.stack_base;
        Emulator {
            pc: program.entry(),
            program,
            config,
            regs,
            memory,
            steps: 0,
            outputs: Vec::new(),
            halted: false,
        }
    }

    fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    fn set_reg(&mut self, r: Reg, v: u64) {
        if !r.is_zero() {
            self.regs[r.index()] = v;
        }
    }

    /// Executes up to `max` further instructions, appending one record per
    /// retired instruction to `out`. Returns `true` once the program has
    /// halted (the `halt` record itself is appended first).
    fn fill(&mut self, out: &mut Vec<DynInst>, max: usize) -> Result<bool, EmuError> {
        debug_assert!(!self.halted, "fill called after halt");
        let len = self.program.len() as u64;
        for _ in 0..max {
            let seq = self.steps;
            if seq >= self.config.max_steps {
                return Err(EmuError::StepLimit { limit: self.config.max_steps });
            }
            let pc = self.pc;
            let inst: Inst = *self
                .program
                .get(pc)
                .ok_or(EmuError::BadFetch { index: u64::from(pc), at_seq: seq })?;

            let mut next = pc + 1;
            let mut taken = false;
            let mut mem: Option<MemAccess> = None;
            let mut result: u64 = 0;
            let mut halted = false;

            match inst.op.kind() {
                OpcodeKind::AluRR => {
                    result =
                        crate::semantics::alu_rr(inst.op, self.reg(inst.rs1), self.reg(inst.rs2));
                    self.set_reg(inst.rd, result);
                }
                OpcodeKind::AluRI => {
                    result = crate::semantics::alu_ri(inst.op, self.reg(inst.rs1), inst.imm);
                    self.set_reg(inst.rd, result);
                }
                OpcodeKind::LoadImm => {
                    result = inst.imm as u64;
                    self.set_reg(inst.rd, result);
                }
                OpcodeKind::Load { width, signed } => {
                    let addr = self.reg(inst.rs1).wrapping_add(inst.imm as u64);
                    let bytes = width.bytes();
                    if Memory::faults(addr, bytes) {
                        return Err(EmuError::MemFault { addr, at_seq: seq });
                    }
                    let raw = self.memory.read_le(addr, bytes);
                    result = if signed { crate::semantics::sign_extend(raw, bytes) } else { raw };
                    self.set_reg(inst.rd, result);
                    mem = Some(MemAccess { addr, width });
                }
                OpcodeKind::Store { width } => {
                    let addr = self.reg(inst.rs1).wrapping_add(inst.imm as u64);
                    let bytes = width.bytes();
                    if Memory::faults(addr, bytes) {
                        return Err(EmuError::MemFault { addr, at_seq: seq });
                    }
                    result = self.reg(inst.rs2);
                    self.memory.write_le(addr, bytes, result);
                    mem = Some(MemAccess { addr, width });
                }
                OpcodeKind::Branch(cond) => {
                    taken = BranchCond::eval(cond, self.reg(inst.rs1), self.reg(inst.rs2));
                    if taken {
                        next = inst.imm as u32;
                    }
                }
                OpcodeKind::Jal => {
                    result = u64::from(pc + 1);
                    self.set_reg(inst.rd, result);
                    next = inst.imm as u32;
                    taken = true;
                }
                OpcodeKind::Jalr => {
                    let target = self.reg(inst.rs1).wrapping_add(inst.imm as u64);
                    if target >= len {
                        return Err(EmuError::BadFetch { index: target, at_seq: seq });
                    }
                    result = u64::from(pc + 1);
                    self.set_reg(inst.rd, result);
                    next = target as u32;
                    taken = true;
                }
                OpcodeKind::Out => {
                    let v = self.reg(inst.rs1);
                    self.outputs.push(v);
                }
                OpcodeKind::Halt => {
                    halted = true;
                    next = pc;
                }
                OpcodeKind::Nop => {}
            }

            out.push(DynInst::new(seq, pc, inst, next, taken, mem, result));
            self.steps += 1;

            if halted {
                self.halted = true;
                return Ok(true);
            }
            self.pc = next;
        }
        Ok(false)
    }

    /// Runs the program to `halt`, returning the full dynamic trace.
    ///
    /// # Errors
    ///
    /// Returns an [`EmuError`] on an invalid fetch, a memory access into the
    /// guard region, or exhaustion of the configured step limit.
    pub fn run(mut self) -> Result<Trace, EmuError> {
        let mut records: Vec<DynInst> = Vec::new();
        while !self.fill(&mut records, usize::MAX)? {}
        Ok(Trace::from_parts(self.program.clone(), records, self.outputs))
    }

    /// Runs the program to `halt`, delivering the trace to `consumer` in
    /// epochs of `epoch_len` records.
    ///
    /// One chunk buffer is allocated for the whole run and reused between
    /// epochs, so peak retained trace memory is a single epoch. The borrow
    /// handed to the consumer does not outlive the call, and the program is
    /// never cloned (streaming consumers that need it borrow it from the
    /// caller instead).
    ///
    /// # Errors
    ///
    /// As [`Emulator::run`]. The consumer may already have observed a
    /// prefix of the trace when an error is returned.
    ///
    /// # Panics
    ///
    /// Panics if `epoch_len` is zero.
    pub fn run_streamed<F>(
        mut self,
        epoch_len: usize,
        mut consumer: F,
    ) -> Result<StreamSummary, EmuError>
    where
        F: FnMut(&TraceChunk),
    {
        assert!(epoch_len > 0, "epoch length must be positive");
        let mut chunk = TraceChunk { base: 0, records: Vec::with_capacity(epoch_len), last: false };
        let mut epochs = 0u64;
        loop {
            chunk.base = self.steps;
            chunk.records.clear();
            let halted = self.fill(&mut chunk.records, epoch_len)?;
            chunk.last = halted;
            epochs += 1;
            consumer(&chunk);
            if halted {
                return Ok(StreamSummary { len: self.steps, epochs, outputs: self.outputs });
            }
        }
    }
}

/// Pull-style streaming view of a trace, for consumers that need random
/// access to a *sliding window* of recent records (the pipeline: fetch
/// reads ahead while the ROB still references older sequence numbers).
///
/// Chunks are produced on demand by [`TraceStream::get`] and recycled by
/// [`TraceStream::release_before`]; released buffers are reused for new
/// epochs, so peak retained memory is `peak_resident_chunks()` epochs.
///
/// The stream is for programs already known to emulate cleanly (the
/// analysis pass runs first and surfaces any [`EmuError`]); a mid-stream
/// emulation failure panics.
#[derive(Debug)]
pub struct TraceStream<'p> {
    emu: Emulator<'p>,
    epoch_len: usize,
    /// Live window, oldest chunk first. Every chunk base is a multiple of
    /// `epoch_len`, so lookup is pure arithmetic.
    window: VecDeque<TraceChunk>,
    /// Recycled chunk buffers awaiting reuse.
    spare: Vec<Vec<DynInst>>,
    /// Total records produced so far (== `emu.steps`).
    produced: u64,
    /// Known total trace length, once the program has halted.
    total: Option<u64>,
    peak_resident: usize,
}

impl<'p> TraceStream<'p> {
    /// Creates a stream over `program` with default emulator limits.
    ///
    /// # Panics
    ///
    /// Panics if `epoch_len` is zero.
    #[must_use]
    pub fn new(program: &'p Program, epoch_len: usize) -> TraceStream<'p> {
        TraceStream::with_config(program, EmulatorConfig::default(), epoch_len)
    }

    /// Creates a stream with explicit emulator limits.
    ///
    /// # Panics
    ///
    /// Panics if `epoch_len` is zero.
    #[must_use]
    pub fn with_config(
        program: &'p Program,
        config: EmulatorConfig,
        epoch_len: usize,
    ) -> TraceStream<'p> {
        assert!(epoch_len > 0, "epoch length must be positive");
        TraceStream {
            emu: Emulator::with_config(program, config),
            epoch_len,
            window: VecDeque::new(),
            spare: Vec::new(),
            produced: 0,
            total: None,
            peak_resident: 0,
        }
    }

    /// The program being executed (borrowed, never cloned).
    #[must_use]
    pub fn program(&self) -> &'p Program {
        self.emu.program
    }

    /// Configured epoch length.
    #[must_use]
    pub fn epoch_len(&self) -> usize {
        self.epoch_len
    }

    fn produce_chunk(&mut self) {
        debug_assert!(self.total.is_none());
        let mut records = self.spare.pop().unwrap_or_else(|| Vec::with_capacity(self.epoch_len));
        records.clear();
        let base = self.produced;
        let halted = self
            .emu
            .fill(&mut records, self.epoch_len)
            .expect("streamed program emulates cleanly (checked by the analysis pass)");
        self.produced += records.len() as u64;
        self.window.push_back(TraceChunk { base, records, last: halted });
        if halted {
            self.total = Some(self.produced);
        }
        self.peak_resident = self.peak_resident.max(self.window.len() + self.spare.len());
    }

    /// The record with sequence number `seq`, producing further epochs on
    /// demand; `None` once `seq` is at or past the end of the trace.
    ///
    /// # Panics
    ///
    /// Panics if `seq` falls before the current window (already released)
    /// or the program fails to emulate.
    pub fn get(&mut self, seq: u64) -> Option<DynInst> {
        while seq >= self.produced && self.total.is_none() {
            self.produce_chunk();
        }
        if seq >= self.produced {
            return None;
        }
        let first = self.window.front().expect("window holds every unreleased produced record");
        assert!(
            seq >= first.base,
            "record {seq} was already released (window starts at {})",
            first.base
        );
        let chunk = &self.window[((seq - first.base) / self.epoch_len as u64) as usize];
        Some(chunk.records[(seq - chunk.base) as usize])
    }

    /// Whether `pos` is past the last record of the trace (producing epochs
    /// as needed to decide).
    pub fn end_reached(&mut self, pos: u64) -> bool {
        self.get(pos).is_none()
    }

    /// Recycles every chunk that lies entirely before `seq`; their buffers
    /// are reused for future epochs.
    pub fn release_before(&mut self, seq: u64) {
        while let Some(front) = self.window.front() {
            if front.end() > seq {
                break;
            }
            let chunk = self.window.pop_front().expect("front exists");
            self.spare.push(chunk.records);
        }
    }

    /// Chunks currently resident (live window plus recycled spares).
    #[must_use]
    pub fn resident_chunks(&self) -> usize {
        self.window.len() + self.spare.len()
    }

    /// High-water mark of resident chunks over the stream's lifetime.
    #[must_use]
    pub fn peak_resident_chunks(&self) -> usize {
        self.peak_resident
    }

    /// High-water mark of retained trace bytes: resident chunks times the
    /// epoch buffer size. Deterministic model-level accounting (buffer
    /// capacity, not OS RSS), comparable across runs.
    #[must_use]
    pub fn peak_resident_bytes(&self) -> u64 {
        self.peak_resident as u64 * self.epoch_len as u64 * std::mem::size_of::<DynInst>() as u64
    }

    /// Total trace length, once known (the final epoch has been produced).
    #[must_use]
    pub fn total_len(&self) -> Option<u64> {
        self.total
    }

    /// Values written by `out` so far; complete once [`TraceStream::total_len`]
    /// is `Some`.
    #[must_use]
    pub fn outputs(&self) -> &[u64] {
        &self.emu.outputs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dide_isa::ProgramBuilder;

    fn run(b: ProgramBuilder) -> Trace {
        Emulator::new(&b.build().unwrap()).run().unwrap()
    }

    #[test]
    fn arithmetic_and_output() {
        let mut b = ProgramBuilder::new("arith");
        b.li(Reg::T0, 6).li(Reg::T1, 7);
        b.mul(Reg::T2, Reg::T0, Reg::T1);
        b.out(Reg::T2);
        b.halt();
        assert_eq!(run(b).outputs(), &[42]);
    }

    #[test]
    fn signed_division_semantics() {
        let mut b = ProgramBuilder::new("div");
        b.li(Reg::T0, -7).li(Reg::T1, 2);
        b.div(Reg::T2, Reg::T0, Reg::T1);
        b.rem(Reg::T3, Reg::T0, Reg::T1);
        b.out(Reg::T2).out(Reg::T3);
        // division by zero: div -> all ones, rem -> dividend
        b.li(Reg::T1, 0);
        b.div(Reg::T4, Reg::T0, Reg::T1);
        b.rem(Reg::T5, Reg::T0, Reg::T1);
        b.out(Reg::T4).out(Reg::T5);
        b.halt();
        let t = run(b);
        assert_eq!(t.outputs(), &[(-3i64) as u64, (-1i64) as u64, u64::MAX, (-7i64) as u64]);
    }

    #[test]
    fn loads_sign_extend() {
        let mut b = ProgramBuilder::new("sext");
        let addr = b.data_bytes(&[0xff, 0xff, 0x80, 0x00]);
        b.li_u64(Reg::T0, addr);
        b.lb(Reg::T1, Reg::T0, 0);
        b.lbu(Reg::T2, Reg::T0, 0);
        b.lh(Reg::T3, Reg::T0, 0);
        b.lw(Reg::T4, Reg::T0, 0);
        b.out(Reg::T1).out(Reg::T2).out(Reg::T3).out(Reg::T4);
        b.halt();
        let t = run(b);
        assert_eq!(t.outputs(), &[(-1i64) as u64, 0xff, (-1i64) as u64, 0x0080_ffff,]);
    }

    #[test]
    fn store_then_load_roundtrip() {
        let mut b = ProgramBuilder::new("mem");
        b.li(Reg::T0, 0x0123_4567_89ab_cdef_u64 as i64);
        b.sd(Reg::T0, Reg::SP, -8);
        b.ld(Reg::T1, Reg::SP, -8);
        b.lw(Reg::T2, Reg::SP, -8);
        b.out(Reg::T1).out(Reg::T2);
        b.halt();
        let t = run(b);
        assert_eq!(t.outputs()[0], 0x0123_4567_89ab_cdef);
        assert_eq!(t.outputs()[1], 0xffff_ffff_89ab_cdef); // lw sign-extends
    }

    #[test]
    fn zero_register_writes_discarded() {
        let mut b = ProgramBuilder::new("zero");
        b.li(Reg::ZERO, 99);
        b.out(Reg::ZERO);
        b.halt();
        assert_eq!(run(b).outputs(), &[0]);
    }

    #[test]
    fn call_and_return() {
        let mut b = ProgramBuilder::new("call");
        let f = b.label();
        b.li(Reg::A0, 5);
        b.call(f);
        b.out(Reg::A0);
        b.halt();
        b.bind(f);
        b.addi(Reg::A0, Reg::A0, 10);
        b.ret();
        let t = run(b);
        assert_eq!(t.outputs(), &[15]);
        // jal and jalr recorded as taken control transfers
        let jal = t.iter().find(|r| r.op == dide_isa::Opcode::Jal).unwrap();
        assert!(jal.taken());
        assert_eq!(jal.next_index, 4);
    }

    #[test]
    fn branch_records_direction_and_target() {
        let mut b = ProgramBuilder::new("branch");
        b.li(Reg::T0, 1);
        let skip = b.label();
        b.bne(Reg::T0, Reg::ZERO, skip);
        b.li(Reg::T0, 0); // skipped
        b.bind(skip);
        b.out(Reg::T0);
        b.halt();
        let t = run(b);
        assert_eq!(t.outputs(), &[1]);
        let br = t.iter().find(|r| r.is_cond_branch()).unwrap();
        assert!(br.taken());
        assert_eq!(br.next_index, 3);
    }

    #[test]
    fn step_limit_enforced() {
        let mut b = ProgramBuilder::new("spin");
        let top = b.label();
        b.bind(top);
        b.j(top);
        b.halt();
        let p = b.build().unwrap();
        let cfg = EmulatorConfig { max_steps: 100, ..EmulatorConfig::default() };
        let err = Emulator::with_config(&p, cfg).run().unwrap_err();
        assert_eq!(err, EmuError::StepLimit { limit: 100 });
    }

    #[test]
    fn guard_region_faults() {
        let mut b = ProgramBuilder::new("null");
        b.li(Reg::T0, 0);
        b.ld(Reg::T1, Reg::T0, 8);
        b.halt();
        let p = b.build().unwrap();
        let err = Emulator::new(&p).run().unwrap_err();
        assert!(matches!(err, EmuError::MemFault { addr: 8, .. }));
    }

    #[test]
    fn jalr_to_invalid_index_faults() {
        let mut b = ProgramBuilder::new("badjump");
        b.li(Reg::T0, 1_000_000);
        b.jalr(Reg::ZERO, Reg::T0, 0);
        b.halt();
        let p = b.build().unwrap();
        assert!(matches!(
            Emulator::new(&p).run().unwrap_err(),
            EmuError::BadFetch { index: 1_000_000, .. }
        ));
    }

    #[test]
    fn data_segment_initialized() {
        let mut b = ProgramBuilder::new("data");
        let addr = b.data_u64(0xdead_beef);
        b.li_u64(Reg::T0, addr);
        b.ld(Reg::T1, Reg::T0, 0);
        b.out(Reg::T1);
        b.halt();
        assert_eq!(run(b).outputs(), &[0xdead_beef]);
    }

    #[test]
    fn shift_semantics() {
        let mut b = ProgramBuilder::new("shift");
        b.li(Reg::T0, -8);
        b.srai(Reg::T1, Reg::T0, 1);
        b.srli(Reg::T2, Reg::T0, 1);
        b.slli(Reg::T3, Reg::T0, 1);
        b.out(Reg::T1).out(Reg::T2).out(Reg::T3);
        b.halt();
        let t = run(b);
        assert_eq!(t.outputs()[0], (-4i64) as u64);
        assert_eq!(t.outputs()[1], ((-8i64) as u64) >> 1);
        assert_eq!(t.outputs()[2], (-16i64) as u64);
    }

    #[test]
    fn slt_comparisons() {
        let mut b = ProgramBuilder::new("slt");
        b.li(Reg::T0, -1).li(Reg::T1, 1);
        b.slt(Reg::T2, Reg::T0, Reg::T1);
        b.sltu(Reg::T3, Reg::T0, Reg::T1);
        b.slti(Reg::T4, Reg::T0, 0);
        b.out(Reg::T2).out(Reg::T3).out(Reg::T4);
        b.halt();
        assert_eq!(run(b).outputs(), &[1, 0, 1]);
    }

    /// A looping program long enough to span several epochs.
    fn looping_program(iters: i64) -> Program {
        let mut b = ProgramBuilder::new("loop");
        b.li(Reg::T0, 0);
        b.li(Reg::T1, iters);
        let top = b.label();
        b.bind(top);
        b.sw(Reg::T0, Reg::SP, -4);
        b.lw(Reg::T2, Reg::SP, -4);
        b.add(Reg::T3, Reg::T2, Reg::T2);
        b.addi(Reg::T0, Reg::T0, 1);
        b.blt(Reg::T0, Reg::T1, top);
        b.out(Reg::T3);
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn streamed_concatenation_matches_run() {
        let p = looping_program(200);
        let whole = Emulator::new(&p).run().unwrap();
        for epoch_len in [1usize, 7, 64, 100_000] {
            let mut streamed: Vec<DynInst> = Vec::new();
            let mut bases = Vec::new();
            let summary = Emulator::new(&p)
                .run_streamed(epoch_len, |chunk| {
                    bases.push(chunk.base());
                    assert_eq!(chunk.base() % epoch_len as u64, 0);
                    assert!(!chunk.is_empty());
                    streamed.extend_from_slice(chunk.records());
                })
                .unwrap();
            assert_eq!(streamed, whole.records(), "epoch_len={epoch_len}");
            assert_eq!(summary.outputs, whole.outputs());
            assert_eq!(summary.len, whole.len() as u64);
            assert_eq!(summary.epochs, bases.len() as u64);
            // Every chunk but the last is exactly epoch_len.
            assert_eq!(
                bases,
                (0..summary.epochs).map(|i| i * epoch_len as u64).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn streamed_errors_propagate() {
        let mut b = ProgramBuilder::new("spin");
        let top = b.label();
        b.bind(top);
        b.j(top);
        b.halt();
        let p = b.build().unwrap();
        let cfg = EmulatorConfig { max_steps: 100, ..EmulatorConfig::default() };
        let err = Emulator::with_config(&p, cfg).run_streamed(8, |_| {}).unwrap_err();
        assert_eq!(err, EmuError::StepLimit { limit: 100 });
    }

    #[test]
    fn trace_stream_random_access_and_recycling() {
        let p = looping_program(300);
        let whole = Emulator::new(&p).run().unwrap();
        let mut stream = TraceStream::new(&p, 64);
        // Walk forward like the pipeline: read ahead a bit, release behind.
        for seq in 0..whole.len() as u64 {
            let r = stream.get(seq).expect("record exists");
            assert_eq!(r, whole.records()[seq as usize]);
            if seq >= 128 {
                stream.release_before(seq - 128);
            }
        }
        assert!(stream.end_reached(whole.len() as u64));
        assert_eq!(stream.total_len(), Some(whole.len() as u64));
        assert_eq!(stream.outputs(), whole.outputs());
        // The window never needed more than read-ahead + released slack.
        assert!(
            stream.peak_resident_chunks() <= 4,
            "peak {} chunks for a 128-record window of 64-record epochs",
            stream.peak_resident_chunks()
        );
        assert_eq!(
            stream.peak_resident_bytes(),
            stream.peak_resident_chunks() as u64 * 64 * std::mem::size_of::<DynInst>() as u64
        );
    }

    #[test]
    #[should_panic(expected = "already released")]
    fn trace_stream_rejects_reads_behind_the_window() {
        let p = looping_program(300);
        let mut stream = TraceStream::new(&p, 16);
        let _ = stream.get(200);
        stream.release_before(64);
        let _ = stream.get(0);
    }
}
