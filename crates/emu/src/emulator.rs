//! The architectural interpreter.

use dide_isa::{BranchCond, Inst, OpcodeKind, Program, Reg, STACK_BASE};

use crate::dyninst::{DynInst, MemAccess};
use crate::error::EmuError;
use crate::memory::Memory;
use crate::trace::Trace;

/// Resource limits and initial conditions for an emulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmulatorConfig {
    /// Maximum dynamic instructions before the run aborts with
    /// [`EmuError::StepLimit`].
    pub max_steps: u64,
    /// Initial stack pointer.
    pub stack_base: u64,
}

impl Default for EmulatorConfig {
    fn default() -> Self {
        EmulatorConfig { max_steps: 50_000_000, stack_base: STACK_BASE }
    }
}

/// Architectural interpreter for SIR programs.
///
/// Executes a program to completion and captures the full dynamic trace.
/// See the [crate docs](crate) for an example.
#[derive(Debug)]
pub struct Emulator<'p> {
    program: &'p Program,
    config: EmulatorConfig,
    regs: [u64; Reg::COUNT],
    memory: Memory,
}

impl<'p> Emulator<'p> {
    /// Creates an emulator with default limits.
    #[must_use]
    pub fn new(program: &'p Program) -> Emulator<'p> {
        Emulator::with_config(program, EmulatorConfig::default())
    }

    /// Creates an emulator with explicit limits.
    #[must_use]
    pub fn with_config(program: &'p Program, config: EmulatorConfig) -> Emulator<'p> {
        let mut memory = Memory::new();
        memory.write_bytes(dide_isa::DATA_BASE, program.data());
        let mut regs = [0u64; Reg::COUNT];
        regs[Reg::SP.index()] = config.stack_base;
        regs[Reg::FP.index()] = config.stack_base;
        Emulator { program, config, regs, memory }
    }

    fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    fn set_reg(&mut self, r: Reg, v: u64) {
        if !r.is_zero() {
            self.regs[r.index()] = v;
        }
    }

    /// Runs the program to `halt`, returning the full dynamic trace.
    ///
    /// # Errors
    ///
    /// Returns an [`EmuError`] on an invalid fetch, a memory access into the
    /// guard region, or exhaustion of the configured step limit.
    pub fn run(mut self) -> Result<Trace, EmuError> {
        let mut records: Vec<DynInst> = Vec::new();
        let mut outputs: Vec<u64> = Vec::new();
        let mut pc: u32 = self.program.entry();
        let len = self.program.len() as u64;

        loop {
            let seq = records.len() as u64;
            if seq >= self.config.max_steps {
                return Err(EmuError::StepLimit { limit: self.config.max_steps });
            }
            let inst: Inst = *self
                .program
                .get(pc)
                .ok_or(EmuError::BadFetch { index: u64::from(pc), at_seq: seq })?;

            let mut next = pc + 1;
            let mut taken = false;
            let mut mem: Option<MemAccess> = None;
            let mut result: u64 = 0;
            let mut halted = false;

            match inst.op.kind() {
                OpcodeKind::AluRR => {
                    result =
                        crate::semantics::alu_rr(inst.op, self.reg(inst.rs1), self.reg(inst.rs2));
                    self.set_reg(inst.rd, result);
                }
                OpcodeKind::AluRI => {
                    result = crate::semantics::alu_ri(inst.op, self.reg(inst.rs1), inst.imm);
                    self.set_reg(inst.rd, result);
                }
                OpcodeKind::LoadImm => {
                    result = inst.imm as u64;
                    self.set_reg(inst.rd, result);
                }
                OpcodeKind::Load { width, signed } => {
                    let addr = self.reg(inst.rs1).wrapping_add(inst.imm as u64);
                    let bytes = width.bytes();
                    if Memory::faults(addr, bytes) {
                        return Err(EmuError::MemFault { addr, at_seq: seq });
                    }
                    let raw = self.memory.read_le(addr, bytes);
                    result = if signed { crate::semantics::sign_extend(raw, bytes) } else { raw };
                    self.set_reg(inst.rd, result);
                    mem = Some(MemAccess { addr, width });
                }
                OpcodeKind::Store { width } => {
                    let addr = self.reg(inst.rs1).wrapping_add(inst.imm as u64);
                    let bytes = width.bytes();
                    if Memory::faults(addr, bytes) {
                        return Err(EmuError::MemFault { addr, at_seq: seq });
                    }
                    result = self.reg(inst.rs2);
                    self.memory.write_le(addr, bytes, result);
                    mem = Some(MemAccess { addr, width });
                }
                OpcodeKind::Branch(cond) => {
                    taken = BranchCond::eval(cond, self.reg(inst.rs1), self.reg(inst.rs2));
                    if taken {
                        next = inst.imm as u32;
                    }
                }
                OpcodeKind::Jal => {
                    result = u64::from(pc + 1);
                    self.set_reg(inst.rd, result);
                    next = inst.imm as u32;
                    taken = true;
                }
                OpcodeKind::Jalr => {
                    let target = self.reg(inst.rs1).wrapping_add(inst.imm as u64);
                    if target >= len {
                        return Err(EmuError::BadFetch { index: target, at_seq: seq });
                    }
                    result = u64::from(pc + 1);
                    self.set_reg(inst.rd, result);
                    next = target as u32;
                    taken = true;
                }
                OpcodeKind::Out => {
                    outputs.push(self.reg(inst.rs1));
                }
                OpcodeKind::Halt => {
                    halted = true;
                    next = pc;
                }
                OpcodeKind::Nop => {}
            }

            records.push(DynInst { seq, index: pc, inst, next_index: next, taken, mem, result });

            if halted {
                break;
            }
            pc = next;
        }

        Ok(Trace::from_parts(self.program.clone(), records, outputs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dide_isa::ProgramBuilder;

    fn run(b: ProgramBuilder) -> Trace {
        Emulator::new(&b.build().unwrap()).run().unwrap()
    }

    #[test]
    fn arithmetic_and_output() {
        let mut b = ProgramBuilder::new("arith");
        b.li(Reg::T0, 6).li(Reg::T1, 7);
        b.mul(Reg::T2, Reg::T0, Reg::T1);
        b.out(Reg::T2);
        b.halt();
        assert_eq!(run(b).outputs(), &[42]);
    }

    #[test]
    fn signed_division_semantics() {
        let mut b = ProgramBuilder::new("div");
        b.li(Reg::T0, -7).li(Reg::T1, 2);
        b.div(Reg::T2, Reg::T0, Reg::T1);
        b.rem(Reg::T3, Reg::T0, Reg::T1);
        b.out(Reg::T2).out(Reg::T3);
        // division by zero: div -> all ones, rem -> dividend
        b.li(Reg::T1, 0);
        b.div(Reg::T4, Reg::T0, Reg::T1);
        b.rem(Reg::T5, Reg::T0, Reg::T1);
        b.out(Reg::T4).out(Reg::T5);
        b.halt();
        let t = run(b);
        assert_eq!(t.outputs(), &[(-3i64) as u64, (-1i64) as u64, u64::MAX, (-7i64) as u64]);
    }

    #[test]
    fn loads_sign_extend() {
        let mut b = ProgramBuilder::new("sext");
        let addr = b.data_bytes(&[0xff, 0xff, 0x80, 0x00]);
        b.li_u64(Reg::T0, addr);
        b.lb(Reg::T1, Reg::T0, 0);
        b.lbu(Reg::T2, Reg::T0, 0);
        b.lh(Reg::T3, Reg::T0, 0);
        b.lw(Reg::T4, Reg::T0, 0);
        b.out(Reg::T1).out(Reg::T2).out(Reg::T3).out(Reg::T4);
        b.halt();
        let t = run(b);
        assert_eq!(t.outputs(), &[(-1i64) as u64, 0xff, (-1i64) as u64, 0x0080_ffff,]);
    }

    #[test]
    fn store_then_load_roundtrip() {
        let mut b = ProgramBuilder::new("mem");
        b.li(Reg::T0, 0x0123_4567_89ab_cdef_u64 as i64);
        b.sd(Reg::T0, Reg::SP, -8);
        b.ld(Reg::T1, Reg::SP, -8);
        b.lw(Reg::T2, Reg::SP, -8);
        b.out(Reg::T1).out(Reg::T2);
        b.halt();
        let t = run(b);
        assert_eq!(t.outputs()[0], 0x0123_4567_89ab_cdef);
        assert_eq!(t.outputs()[1], 0xffff_ffff_89ab_cdef); // lw sign-extends
    }

    #[test]
    fn zero_register_writes_discarded() {
        let mut b = ProgramBuilder::new("zero");
        b.li(Reg::ZERO, 99);
        b.out(Reg::ZERO);
        b.halt();
        assert_eq!(run(b).outputs(), &[0]);
    }

    #[test]
    fn call_and_return() {
        let mut b = ProgramBuilder::new("call");
        let f = b.label();
        b.li(Reg::A0, 5);
        b.call(f);
        b.out(Reg::A0);
        b.halt();
        b.bind(f);
        b.addi(Reg::A0, Reg::A0, 10);
        b.ret();
        let t = run(b);
        assert_eq!(t.outputs(), &[15]);
        // jal and jalr recorded as taken control transfers
        let jal = t.iter().find(|r| r.inst.op == dide_isa::Opcode::Jal).unwrap();
        assert!(jal.taken);
        assert_eq!(jal.next_index, 4);
    }

    #[test]
    fn branch_records_direction_and_target() {
        let mut b = ProgramBuilder::new("branch");
        b.li(Reg::T0, 1);
        let skip = b.label();
        b.bne(Reg::T0, Reg::ZERO, skip);
        b.li(Reg::T0, 0); // skipped
        b.bind(skip);
        b.out(Reg::T0);
        b.halt();
        let t = run(b);
        assert_eq!(t.outputs(), &[1]);
        let br = t.iter().find(|r| r.is_cond_branch()).unwrap();
        assert!(br.taken);
        assert_eq!(br.next_index, 3);
    }

    #[test]
    fn step_limit_enforced() {
        let mut b = ProgramBuilder::new("spin");
        let top = b.label();
        b.bind(top);
        b.j(top);
        b.halt();
        let p = b.build().unwrap();
        let cfg = EmulatorConfig { max_steps: 100, ..EmulatorConfig::default() };
        let err = Emulator::with_config(&p, cfg).run().unwrap_err();
        assert_eq!(err, EmuError::StepLimit { limit: 100 });
    }

    #[test]
    fn guard_region_faults() {
        let mut b = ProgramBuilder::new("null");
        b.li(Reg::T0, 0);
        b.ld(Reg::T1, Reg::T0, 8);
        b.halt();
        let p = b.build().unwrap();
        let err = Emulator::new(&p).run().unwrap_err();
        assert!(matches!(err, EmuError::MemFault { addr: 8, .. }));
    }

    #[test]
    fn jalr_to_invalid_index_faults() {
        let mut b = ProgramBuilder::new("badjump");
        b.li(Reg::T0, 1_000_000);
        b.jalr(Reg::ZERO, Reg::T0, 0);
        b.halt();
        let p = b.build().unwrap();
        assert!(matches!(
            Emulator::new(&p).run().unwrap_err(),
            EmuError::BadFetch { index: 1_000_000, .. }
        ));
    }

    #[test]
    fn data_segment_initialized() {
        let mut b = ProgramBuilder::new("data");
        let addr = b.data_u64(0xdead_beef);
        b.li_u64(Reg::T0, addr);
        b.ld(Reg::T1, Reg::T0, 0);
        b.out(Reg::T1);
        b.halt();
        assert_eq!(run(b).outputs(), &[0xdead_beef]);
    }

    #[test]
    fn shift_semantics() {
        let mut b = ProgramBuilder::new("shift");
        b.li(Reg::T0, -8);
        b.srai(Reg::T1, Reg::T0, 1);
        b.srli(Reg::T2, Reg::T0, 1);
        b.slli(Reg::T3, Reg::T0, 1);
        b.out(Reg::T1).out(Reg::T2).out(Reg::T3);
        b.halt();
        let t = run(b);
        assert_eq!(t.outputs()[0], (-4i64) as u64);
        assert_eq!(t.outputs()[1], ((-8i64) as u64) >> 1);
        assert_eq!(t.outputs()[2], (-16i64) as u64);
    }

    #[test]
    fn slt_comparisons() {
        let mut b = ProgramBuilder::new("slt");
        b.li(Reg::T0, -1).li(Reg::T1, 1);
        b.slt(Reg::T2, Reg::T0, Reg::T1);
        b.sltu(Reg::T3, Reg::T0, Reg::T1);
        b.slti(Reg::T4, Reg::T0, 0);
        b.out(Reg::T2).out(Reg::T3).out(Reg::T4);
        b.halt();
        assert_eq!(run(b).outputs(), &[1, 0, 1]);
    }
}
