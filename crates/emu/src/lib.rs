//! Functional emulator and dynamic-trace capture for the SIR ISA.
//!
//! The emulator executes a [`dide_isa::Program`] architecturally (no timing)
//! and records every retired instruction as a [`DynInst`]. The resulting
//! [`Trace`] is the substrate for the whole reproduction:
//!
//! * the oracle deadness analysis (`dide-analysis`) walks it forward and
//!   backward to label each dynamic instruction dead or useful;
//! * the dead-instruction predictors (`dide-predictor`) are trained and
//!   evaluated over it;
//! * the timing simulator (`dide-pipeline`) consumes it as the committed
//!   instruction stream (correct-path, execution-driven timing).
//!
//! # Example
//!
//! ```
//! use dide_isa::{ProgramBuilder, Reg};
//! use dide_emu::Emulator;
//!
//! let mut b = ProgramBuilder::new("demo");
//! b.li(Reg::T0, 21);
//! b.add(Reg::T0, Reg::T0, Reg::T0);
//! b.out(Reg::T0);
//! b.halt();
//! let program = b.build()?;
//!
//! let trace = Emulator::new(&program).run()?;
//! assert_eq!(trace.outputs(), &[42]);
//! assert_eq!(trace.len(), 4);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dyninst;
mod emulator;
mod error;
mod memory;
pub mod semantics;
pub mod shadow;
mod trace;

pub use dyninst::{DynInst, MemAccess};
pub use emulator::{
    Emulator, EmulatorConfig, StreamSummary, TraceChunk, TraceStream, DEFAULT_EPOCH_LEN,
};
pub use error::EmuError;
pub use memory::Memory;
pub use shadow::PagedShadow;
pub use trace::{Trace, TraceSummary};
