//! Property-based tests for the ISA layer: encode/decode is a lossless
//! bijection on valid instructions, and the decoder is total (never
//! panics) on arbitrary bytes.

use dide_isa::{Inst, Opcode, Reg};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::new)
}

fn arb_opcode() -> impl Strategy<Value = Opcode> {
    (0..Opcode::ALL.len()).prop_map(|i| Opcode::ALL[i])
}

fn arb_inst() -> impl Strategy<Value = Inst> {
    (arb_opcode(), arb_reg(), arb_reg(), arb_reg(), any::<i64>())
        .prop_map(|(op, rd, rs1, rs2, imm)| Inst::new(op, rd, rs1, rs2, imm))
}

proptest! {
    #[test]
    fn encode_decode_roundtrip(inst in arb_inst()) {
        let encoded = inst.encode();
        let decoded = Inst::decode(&encoded).expect("own encoding decodes");
        prop_assert_eq!(decoded, inst);
    }

    #[test]
    fn decode_is_total(bytes in proptest::array::uniform12(any::<u8>())) {
        // Must never panic; errors are fine.
        let _ = Inst::decode(&bytes);
    }

    #[test]
    fn decode_validates_registers(mut bytes in proptest::array::uniform12(any::<u8>())) {
        bytes[0] = Opcode::Add.code();
        let result = Inst::decode(&bytes);
        let regs_valid = bytes[1] < 32 && bytes[2] < 32 && bytes[3] < 32;
        prop_assert_eq!(result.is_ok(), regs_valid);
    }

    #[test]
    fn display_never_empty(inst in arb_inst()) {
        prop_assert!(!inst.to_string().is_empty());
    }

    #[test]
    fn sources_never_include_zero(inst in arb_inst()) {
        prop_assert!(inst.sources().all(|r| !r.is_zero()));
        prop_assert!(inst.sources().len() <= 2);
    }

    #[test]
    fn dest_iff_shape_and_nonzero(inst in arb_inst()) {
        let expect = inst.op.has_dest() && !inst.rd.is_zero();
        prop_assert_eq!(inst.dest().is_some(), expect);
    }

    #[test]
    fn image_decode_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Arbitrary bytes must never panic the image decoder.
        let _ = dide_isa::Program::from_bytes(&bytes);
    }

    #[test]
    fn image_roundtrip_for_straightline_programs(
        seed_insts in proptest::collection::vec((arb_reg(), any::<i64>()), 1..40),
        name in "[a-z]{1,12}",
    ) {
        use dide_isa::ProgramBuilder;
        let mut b = ProgramBuilder::new(name);
        for (reg, imm) in &seed_insts {
            b.li(*reg, *imm);
        }
        b.halt();
        let p = b.build().expect("straight-line programs are valid");
        let decoded = dide_isa::Program::from_bytes(&p.to_bytes()).expect("roundtrip");
        prop_assert_eq!(decoded, p);
    }
}
