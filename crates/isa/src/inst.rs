//! Instruction form, operand accessors, binary encoding and disassembly.

use std::fmt;

use crate::opcode::{Opcode, OpcodeKind};
use crate::reg::Reg;

/// Width of a memory access, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MemWidth {
    /// One byte.
    B1,
    /// Two bytes.
    B2,
    /// Four bytes.
    B4,
    /// Eight bytes.
    B8,
}

impl MemWidth {
    /// The width in bytes.
    #[inline]
    #[must_use]
    pub fn bytes(self) -> u64 {
        match self {
            MemWidth::B1 => 1,
            MemWidth::B2 => 2,
            MemWidth::B4 => 4,
            MemWidth::B8 => 8,
        }
    }
}

/// A single SIR instruction.
///
/// All instructions share one uniform four-operand form; which fields are
/// meaningful depends on [`Opcode::kind`]. Unused register fields must be
/// [`Reg::ZERO`] and an unused immediate must be `0` (enforced by
/// [`Program`](crate::Program) validation), so that instruction equality and
/// hashing behave predictably.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Inst {
    /// Operation.
    pub op: Opcode,
    /// Destination register (meaningful when [`Opcode::has_dest`]).
    pub rd: Reg,
    /// First source register.
    pub rs1: Reg,
    /// Second source register.
    pub rs2: Reg,
    /// Immediate operand: ALU immediate, memory displacement, or absolute
    /// branch/jump target (instruction index).
    pub imm: i64,
}

/// Error returned when decoding a malformed binary instruction record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The record was shorter than [`Inst::ENCODED_LEN`].
    Truncated,
    /// The opcode byte does not name a valid opcode.
    BadOpcode(u8),
    /// A register field was out of range.
    BadRegister(u8),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "instruction record truncated"),
            DecodeError::BadOpcode(c) => write!(f, "invalid opcode byte {c:#04x}"),
            DecodeError::BadRegister(r) => write!(f, "invalid register number {r}"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl Inst {
    /// Length of one encoded instruction record in bytes.
    pub const ENCODED_LEN: usize = 12;

    /// Creates an instruction with explicit operands.
    #[must_use]
    pub fn new(op: Opcode, rd: Reg, rs1: Reg, rs2: Reg, imm: i64) -> Inst {
        Inst { op, rd, rs1, rs2, imm }
    }

    /// A canonical `nop`.
    #[must_use]
    pub fn nop() -> Inst {
        Inst::new(Opcode::Nop, Reg::ZERO, Reg::ZERO, Reg::ZERO, 0)
    }

    /// The destination register this instruction *architecturally writes*,
    /// i.e. excluding writes to the zero register.
    #[must_use]
    pub fn dest(&self) -> Option<Reg> {
        (self.op.has_dest() && !self.rd.is_zero()).then_some(self.rd)
    }

    /// Source registers read by this instruction, excluding the zero
    /// register (which is not a real data dependence).
    #[must_use]
    pub fn sources(&self) -> SourceIter {
        let (a, b) = match self.op.kind() {
            OpcodeKind::AluRR | OpcodeKind::Branch(_) => (Some(self.rs1), Some(self.rs2)),
            OpcodeKind::AluRI | OpcodeKind::Load { .. } | OpcodeKind::Jalr | OpcodeKind::Out => {
                (Some(self.rs1), None)
            }
            OpcodeKind::Store { .. } => (Some(self.rs1), Some(self.rs2)),
            OpcodeKind::LoadImm | OpcodeKind::Jal | OpcodeKind::Halt | OpcodeKind::Nop => {
                (None, None)
            }
        };
        let keep = |r: Option<Reg>| r.filter(|r| !r.is_zero());
        SourceIter { a: keep(a), b: keep(b) }
    }

    /// Memory access width, for loads and stores.
    #[must_use]
    pub fn mem_width(&self) -> Option<MemWidth> {
        match self.op.kind() {
            OpcodeKind::Load { width, .. } | OpcodeKind::Store { width } => Some(width),
            _ => None,
        }
    }

    /// Encodes the instruction into its stable 12-byte little-endian record.
    #[must_use]
    pub fn encode(&self) -> [u8; Inst::ENCODED_LEN] {
        let mut out = [0u8; Inst::ENCODED_LEN];
        out[0] = self.op.code();
        out[1] = self.rd.number();
        out[2] = self.rs1.number();
        out[3] = self.rs2.number();
        out[4..12].copy_from_slice(&self.imm.to_le_bytes());
        out
    }

    /// Decodes an instruction from the record produced by [`Inst::encode`].
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] if the record is truncated, names an unknown
    /// opcode, or contains an out-of-range register number.
    pub fn decode(bytes: &[u8]) -> Result<Inst, DecodeError> {
        if bytes.len() < Inst::ENCODED_LEN {
            return Err(DecodeError::Truncated);
        }
        let op = Opcode::from_code(bytes[0]).ok_or(DecodeError::BadOpcode(bytes[0]))?;
        let reg = |b: u8| Reg::try_new(b).ok_or(DecodeError::BadRegister(b));
        let mut imm_bytes = [0u8; 8];
        imm_bytes.copy_from_slice(&bytes[4..12]);
        Ok(Inst {
            op,
            rd: reg(bytes[1])?,
            rs1: reg(bytes[2])?,
            rs2: reg(bytes[3])?,
            imm: i64::from_le_bytes(imm_bytes),
        })
    }
}

/// Iterator over an instruction's (at most two) source registers.
///
/// Produced by [`Inst::sources`].
#[derive(Debug, Clone)]
pub struct SourceIter {
    a: Option<Reg>,
    b: Option<Reg>,
}

impl Iterator for SourceIter {
    type Item = Reg;

    fn next(&mut self) -> Option<Reg> {
        self.a.take().or_else(|| self.b.take())
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = usize::from(self.a.is_some()) + usize::from(self.b.is_some());
        (n, Some(n))
    }
}

impl ExactSizeIterator for SourceIter {}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = self.op.mnemonic();
        match self.op.kind() {
            OpcodeKind::AluRR => write!(f, "{m} {}, {}, {}", self.rd, self.rs1, self.rs2),
            OpcodeKind::AluRI => write!(f, "{m} {}, {}, {}", self.rd, self.rs1, self.imm),
            OpcodeKind::LoadImm => write!(f, "{m} {}, {}", self.rd, self.imm),
            OpcodeKind::Load { .. } => write!(f, "{m} {}, {}({})", self.rd, self.imm, self.rs1),
            OpcodeKind::Store { .. } => write!(f, "{m} {}, {}({})", self.rs2, self.imm, self.rs1),
            OpcodeKind::Branch(_) => write!(f, "{m} {}, {}, @{}", self.rs1, self.rs2, self.imm),
            OpcodeKind::Jal => write!(f, "{m} {}, @{}", self.rd, self.imm),
            OpcodeKind::Jalr => write!(f, "{m} {}, {}({})", self.rd, self.imm, self.rs1),
            OpcodeKind::Out => write!(f, "{m} {}", self.rs1),
            OpcodeKind::Halt | OpcodeKind::Nop => f.write_str(m),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst(op: Opcode, rd: Reg, rs1: Reg, rs2: Reg, imm: i64) -> Inst {
        Inst::new(op, rd, rs1, rs2, imm)
    }

    #[test]
    fn dest_excludes_zero_register() {
        let i = inst(Opcode::Add, Reg::ZERO, Reg::T0, Reg::T1, 0);
        assert_eq!(i.dest(), None);
        let i = inst(Opcode::Add, Reg::T2, Reg::T0, Reg::T1, 0);
        assert_eq!(i.dest(), Some(Reg::T2));
    }

    #[test]
    fn stores_and_branches_have_no_dest() {
        assert_eq!(inst(Opcode::Sd, Reg::ZERO, Reg::SP, Reg::T0, 8).dest(), None);
        assert_eq!(inst(Opcode::Beq, Reg::ZERO, Reg::T0, Reg::T1, 4).dest(), None);
    }

    #[test]
    fn sources_by_shape() {
        let srcs = |i: Inst| i.sources().collect::<Vec<_>>();
        assert_eq!(srcs(inst(Opcode::Add, Reg::T2, Reg::T0, Reg::T1, 0)), vec![Reg::T0, Reg::T1]);
        assert_eq!(srcs(inst(Opcode::Addi, Reg::T2, Reg::T0, Reg::ZERO, 1)), vec![Reg::T0]);
        assert_eq!(srcs(inst(Opcode::Li, Reg::T2, Reg::ZERO, Reg::ZERO, 1)), Vec::<Reg>::new());
        assert_eq!(srcs(inst(Opcode::Ld, Reg::T2, Reg::SP, Reg::ZERO, 8)), vec![Reg::SP]);
        assert_eq!(srcs(inst(Opcode::Sd, Reg::ZERO, Reg::SP, Reg::T0, 8)), vec![Reg::SP, Reg::T0]);
        assert_eq!(srcs(inst(Opcode::Jal, Reg::RA, Reg::ZERO, Reg::ZERO, 10)), Vec::<Reg>::new());
        assert_eq!(srcs(inst(Opcode::Jalr, Reg::ZERO, Reg::RA, Reg::ZERO, 0)), vec![Reg::RA]);
        assert_eq!(srcs(inst(Opcode::Out, Reg::ZERO, Reg::A0, Reg::ZERO, 0)), vec![Reg::A0]);
    }

    #[test]
    fn sources_exclude_zero_register() {
        let i = inst(Opcode::Add, Reg::T2, Reg::ZERO, Reg::T1, 0);
        assert_eq!(i.sources().collect::<Vec<_>>(), vec![Reg::T1]);
    }

    #[test]
    fn source_iter_len() {
        let i = inst(Opcode::Add, Reg::T2, Reg::T0, Reg::T1, 0);
        assert_eq!(i.sources().len(), 2);
        let i = inst(Opcode::Li, Reg::T2, Reg::ZERO, Reg::ZERO, 5);
        assert_eq!(i.sources().len(), 0);
    }

    #[test]
    fn mem_width() {
        assert_eq!(
            inst(Opcode::Lb, Reg::T0, Reg::SP, Reg::ZERO, 0).mem_width(),
            Some(MemWidth::B1)
        );
        assert_eq!(
            inst(Opcode::Sw, Reg::ZERO, Reg::SP, Reg::T0, 0).mem_width(),
            Some(MemWidth::B4)
        );
        assert_eq!(inst(Opcode::Add, Reg::T0, Reg::T1, Reg::T2, 0).mem_width(), None);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let cases = [
            inst(Opcode::Add, Reg::T2, Reg::T0, Reg::T1, 0),
            inst(Opcode::Li, Reg::A0, Reg::ZERO, Reg::ZERO, -12345),
            inst(Opcode::Sd, Reg::ZERO, Reg::SP, Reg::T0, -8),
            inst(Opcode::Beq, Reg::ZERO, Reg::T0, Reg::T1, 4096),
            Inst::nop(),
        ];
        for i in cases {
            assert_eq!(Inst::decode(&i.encode()).unwrap(), i);
        }
    }

    #[test]
    fn decode_errors() {
        assert_eq!(Inst::decode(&[0u8; 4]), Err(DecodeError::Truncated));
        let mut rec = Inst::nop().encode();
        rec[0] = 255;
        assert_eq!(Inst::decode(&rec), Err(DecodeError::BadOpcode(255)));
        let mut rec = Inst::nop().encode();
        rec[1] = 99;
        assert_eq!(Inst::decode(&rec), Err(DecodeError::BadRegister(99)));
    }

    #[test]
    fn display_forms() {
        assert_eq!(inst(Opcode::Add, Reg::T2, Reg::T0, Reg::T1, 0).to_string(), "add t2, t0, t1");
        assert_eq!(
            inst(Opcode::Addi, Reg::T0, Reg::T0, Reg::ZERO, 1).to_string(),
            "addi t0, t0, 1"
        );
        assert_eq!(inst(Opcode::Li, Reg::A0, Reg::ZERO, Reg::ZERO, 7).to_string(), "li a0, 7");
        assert_eq!(inst(Opcode::Ld, Reg::T0, Reg::SP, Reg::ZERO, 16).to_string(), "ld t0, 16(sp)");
        assert_eq!(inst(Opcode::Sd, Reg::ZERO, Reg::SP, Reg::T0, 16).to_string(), "sd t0, 16(sp)");
        assert_eq!(
            inst(Opcode::Beq, Reg::ZERO, Reg::T0, Reg::T1, 42).to_string(),
            "beq t0, t1, @42"
        );
        assert_eq!(inst(Opcode::Jal, Reg::RA, Reg::ZERO, Reg::ZERO, 7).to_string(), "jal ra, @7");
        assert_eq!(inst(Opcode::Out, Reg::ZERO, Reg::A0, Reg::ZERO, 0).to_string(), "out a0");
        assert_eq!(Inst::nop().to_string(), "nop");
    }

    #[test]
    fn mem_width_bytes() {
        assert_eq!(MemWidth::B1.bytes(), 1);
        assert_eq!(MemWidth::B2.bytes(), 2);
        assert_eq!(MemWidth::B4.bytes(), 4);
        assert_eq!(MemWidth::B8.bytes(), 8);
    }
}
