//! Binary program images: serialize a [`Program`] to bytes and back.
//!
//! The format is a small, versioned, little-endian container:
//!
//! ```text
//! magic  "SIR0"            4 bytes
//! version                  u32 (currently 1)
//! entry                    u32 (instruction index)
//! inst_count               u32
//! data_len                 u32
//! name_len                 u32
//! insts                    inst_count × 12-byte records (Inst::encode)
//! data                     data_len bytes
//! name                     name_len UTF-8 bytes
//! ```
//!
//! Decoding re-validates everything through [`Program::from_parts`], so a
//! hostile image can produce an error but never an invalid `Program`.

use std::fmt;

use crate::inst::{DecodeError, Inst};
use crate::program::{Program, ProgramError};

/// Magic bytes at the start of every image.
pub const MAGIC: [u8; 4] = *b"SIR0";
/// Current image format version.
pub const VERSION: u32 = 1;

/// Error produced when decoding a program image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImageError {
    /// The image is shorter than its headers or declared payload.
    Truncated,
    /// The magic bytes are wrong.
    BadMagic,
    /// The version is not supported.
    BadVersion(u32),
    /// An instruction record failed to decode.
    BadInst {
        /// Index of the offending instruction.
        index: u32,
        /// The decoder's error.
        cause: DecodeError,
    },
    /// The program name is not valid UTF-8.
    BadName,
    /// The decoded parts do not form a valid program.
    Invalid(ProgramError),
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageError::Truncated => write!(f, "program image truncated"),
            ImageError::BadMagic => write!(f, "not a SIR program image"),
            ImageError::BadVersion(v) => write!(f, "unsupported image version {v}"),
            ImageError::BadInst { index, cause } => {
                write!(f, "instruction {index} failed to decode: {cause}")
            }
            ImageError::BadName => write!(f, "program name is not valid UTF-8"),
            ImageError::Invalid(e) => write!(f, "decoded program is invalid: {e}"),
        }
    }
}

impl std::error::Error for ImageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ImageError::BadInst { cause, .. } => Some(cause),
            ImageError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl Program {
    /// Serializes the program into a binary image.
    ///
    /// # Example
    ///
    /// ```
    /// use dide_isa::{Program, ProgramBuilder, Reg};
    ///
    /// let mut b = ProgramBuilder::new("roundtrip");
    /// b.li(Reg::T0, 7);
    /// b.out(Reg::T0);
    /// b.halt();
    /// let program = b.build()?;
    ///
    /// let image = program.to_bytes();
    /// assert_eq!(Program::from_bytes(&image)?, program);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let name = self.name().as_bytes();
        let mut out = Vec::with_capacity(
            24 + self.len() * Inst::ENCODED_LEN + self.data().len() + name.len(),
        );
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&self.entry().to_le_bytes());
        out.extend_from_slice(&(self.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.data().len() as u32).to_le_bytes());
        out.extend_from_slice(&(name.len() as u32).to_le_bytes());
        for inst in self.insts() {
            out.extend_from_slice(&inst.encode());
        }
        out.extend_from_slice(self.data());
        out.extend_from_slice(name);
        out
    }

    /// Decodes a program from the image produced by [`Program::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns an [`ImageError`] for truncated, malformed, or
    /// semantically invalid images.
    pub fn from_bytes(bytes: &[u8]) -> Result<Program, ImageError> {
        let header = bytes.get(..24).ok_or(ImageError::Truncated)?;
        if header[0..4] != MAGIC {
            return Err(ImageError::BadMagic);
        }
        let word = |i: usize| u32::from_le_bytes(header[i..i + 4].try_into().expect("4 bytes"));
        let version = word(4);
        if version != VERSION {
            return Err(ImageError::BadVersion(version));
        }
        let entry = word(8);
        let inst_count = word(12) as usize;
        let data_len = word(16) as usize;
        let name_len = word(20) as usize;

        let insts_end = 24usize
            .checked_add(inst_count.checked_mul(Inst::ENCODED_LEN).ok_or(ImageError::Truncated)?)
            .ok_or(ImageError::Truncated)?;
        let data_end = insts_end.checked_add(data_len).ok_or(ImageError::Truncated)?;
        let name_end = data_end.checked_add(name_len).ok_or(ImageError::Truncated)?;
        if bytes.len() < name_end {
            return Err(ImageError::Truncated);
        }

        let mut insts = Vec::with_capacity(inst_count);
        for i in 0..inst_count {
            let at = 24 + i * Inst::ENCODED_LEN;
            let inst = Inst::decode(&bytes[at..at + Inst::ENCODED_LEN])
                .map_err(|cause| ImageError::BadInst { index: i as u32, cause })?;
            insts.push(inst);
        }
        let data = bytes[insts_end..data_end].to_vec();
        let name =
            std::str::from_utf8(&bytes[data_end..name_end]).map_err(|_| ImageError::BadName)?;
        Program::from_parts(name, insts, data, entry).map_err(ImageError::Invalid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ProgramBuilder, Reg};

    fn sample() -> Program {
        let mut b = ProgramBuilder::new("image-sample");
        let addr = b.data_u64(0x1234);
        b.li_u64(Reg::T0, addr);
        b.ld(Reg::T1, Reg::T0, 0);
        b.out(Reg::T1);
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn roundtrip() {
        let p = sample();
        let decoded = Program::from_bytes(&p.to_bytes()).unwrap();
        assert_eq!(decoded, p);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut img = sample().to_bytes();
        img[0] = b'X';
        assert_eq!(Program::from_bytes(&img), Err(ImageError::BadMagic));
    }

    #[test]
    fn bad_version_rejected() {
        let mut img = sample().to_bytes();
        img[4] = 99;
        assert_eq!(Program::from_bytes(&img), Err(ImageError::BadVersion(99)));
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let img = sample().to_bytes();
        for len in 0..img.len() {
            let r = Program::from_bytes(&img[..len]);
            assert!(r.is_err(), "length {len} must not decode");
        }
    }

    #[test]
    fn corrupt_instruction_reported_with_index() {
        let mut img = sample().to_bytes();
        img[24] = 255; // first instruction's opcode byte
        match Program::from_bytes(&img) {
            Err(ImageError::BadInst { index: 0, .. }) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn invalid_program_rejected() {
        // A single nop falls off the end: structurally decodable, invalid.
        let inst = Inst::nop();
        let mut img = Vec::new();
        img.extend_from_slice(&MAGIC);
        img.extend_from_slice(&VERSION.to_le_bytes());
        img.extend_from_slice(&0u32.to_le_bytes()); // entry
        img.extend_from_slice(&1u32.to_le_bytes()); // one inst
        img.extend_from_slice(&0u32.to_le_bytes()); // no data
        img.extend_from_slice(&0u32.to_le_bytes()); // no name
        img.extend_from_slice(&inst.encode());
        assert!(matches!(Program::from_bytes(&img), Err(ImageError::Invalid(_))));
    }

    #[test]
    fn error_display() {
        assert!(ImageError::Truncated.to_string().contains("truncated"));
        assert!(ImageError::BadMagic.to_string().contains("not a SIR"));
    }
}
