//! Architectural register names.

use std::fmt;

/// An architectural register, `r0`–`r31`.
///
/// `r0` ([`Reg::ZERO`]) is hardwired to zero: reads return 0 and writes are
/// architecturally void (they are *not* counted as dead instructions — this
/// mirrors the Alpha's `r31`).
///
/// A conventional ABI is layered on top for the workload generator:
///
/// | name | register | role |
/// |------|----------|------|
/// | `zero` | r0 | hardwired zero |
/// | `ra` | r1 | return address |
/// | `sp` | r2 | stack pointer |
/// | `fp` | r3 | frame pointer |
/// | `a0`–`a5` | r4–r9 | arguments / return values (caller-saved) |
/// | `t0`–`t7` | r10–r17 | temporaries (caller-saved) |
/// | `s0`–`s7` | r18–r25 | saved (callee-saved) |
/// | `g0`–`g5` | r26–r31 | globals |
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Number of architectural registers.
    pub const COUNT: usize = 32;

    /// The hardwired zero register, `r0`.
    pub const ZERO: Reg = Reg(0);
    /// Return-address register, `r1`.
    pub const RA: Reg = Reg(1);
    /// Stack pointer, `r2`.
    pub const SP: Reg = Reg(2);
    /// Frame pointer, `r3`.
    pub const FP: Reg = Reg(3);
    /// Argument register 0, `r4`.
    pub const A0: Reg = Reg(4);
    /// Argument register 1, `r5`.
    pub const A1: Reg = Reg(5);
    /// Argument register 2, `r6`.
    pub const A2: Reg = Reg(6);
    /// Argument register 3, `r7`.
    pub const A3: Reg = Reg(7);
    /// Argument register 4, `r8`.
    pub const A4: Reg = Reg(8);
    /// Argument register 5, `r9`.
    pub const A5: Reg = Reg(9);
    /// Temporary register 0, `r10`.
    pub const T0: Reg = Reg(10);
    /// Temporary register 1, `r11`.
    pub const T1: Reg = Reg(11);
    /// Temporary register 2, `r12`.
    pub const T2: Reg = Reg(12);
    /// Temporary register 3, `r13`.
    pub const T3: Reg = Reg(13);
    /// Temporary register 4, `r14`.
    pub const T4: Reg = Reg(14);
    /// Temporary register 5, `r15`.
    pub const T5: Reg = Reg(15);
    /// Temporary register 6, `r16`.
    pub const T6: Reg = Reg(16);
    /// Temporary register 7, `r17`.
    pub const T7: Reg = Reg(17);
    /// Callee-saved register 0, `r18`.
    pub const S0: Reg = Reg(18);
    /// Callee-saved register 1, `r19`.
    pub const S1: Reg = Reg(19);
    /// Callee-saved register 2, `r20`.
    pub const S2: Reg = Reg(20);
    /// Callee-saved register 3, `r21`.
    pub const S3: Reg = Reg(21);
    /// Callee-saved register 4, `r22`.
    pub const S4: Reg = Reg(22);
    /// Callee-saved register 5, `r23`.
    pub const S5: Reg = Reg(23);
    /// Callee-saved register 6, `r24`.
    pub const S6: Reg = Reg(24);
    /// Callee-saved register 7, `r25`.
    pub const S7: Reg = Reg(25);
    /// Global register 0, `r26`.
    pub const G0: Reg = Reg(26);
    /// Global register 1, `r27`.
    pub const G1: Reg = Reg(27);
    /// Global register 2, `r28`.
    pub const G2: Reg = Reg(28);
    /// Global register 3, `r29`.
    pub const G3: Reg = Reg(29);
    /// Global register 4, `r30`.
    pub const G4: Reg = Reg(30);
    /// Global register 5, `r31`.
    pub const G5: Reg = Reg(31);

    /// Creates a register from its number.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    #[must_use]
    pub fn new(n: u8) -> Reg {
        assert!(usize::from(n) < Reg::COUNT, "register number {n} out of range");
        Reg(n)
    }

    /// Creates a register from its number, returning `None` when out of range.
    #[must_use]
    pub fn try_new(n: u8) -> Option<Reg> {
        (usize::from(n) < Reg::COUNT).then_some(Reg(n))
    }

    /// The register's number, `0..32`.
    #[inline]
    #[must_use]
    pub fn number(self) -> u8 {
        self.0
    }

    /// The register's number as a `usize` index.
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        usize::from(self.0)
    }

    /// Whether this is the hardwired zero register.
    #[inline]
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Iterates over all 32 architectural registers in numeric order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..Reg::COUNT as u8).map(Reg)
    }

    /// The caller-saved temporary registers `t0`–`t7`.
    pub const TEMPS: [Reg; 8] =
        [Reg::T0, Reg::T1, Reg::T2, Reg::T3, Reg::T4, Reg::T5, Reg::T6, Reg::T7];

    /// The callee-saved registers `s0`–`s7`.
    pub const SAVED: [Reg; 8] =
        [Reg::S0, Reg::S1, Reg::S2, Reg::S3, Reg::S4, Reg::S5, Reg::S6, Reg::S7];

    /// The argument registers `a0`–`a5`.
    pub const ARGS: [Reg; 6] = [Reg::A0, Reg::A1, Reg::A2, Reg::A3, Reg::A4, Reg::A5];

    /// The global registers `g0`–`g5`.
    pub const GLOBALS: [Reg; 6] = [Reg::G0, Reg::G1, Reg::G2, Reg::G3, Reg::G4, Reg::G5];
}

impl Default for Reg {
    fn default() -> Self {
        Reg::ZERO
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            0 => f.write_str("zero"),
            1 => f.write_str("ra"),
            2 => f.write_str("sp"),
            3 => f.write_str("fp"),
            4..=9 => write!(f, "a{}", self.0 - 4),
            10..=17 => write!(f, "t{}", self.0 - 10),
            18..=25 => write!(f, "s{}", self.0 - 18),
            _ => write!(f, "g{}", self.0 - 26),
        }
    }
}

impl From<Reg> for u8 {
    fn from(r: Reg) -> u8 {
        r.0
    }
}

impl TryFrom<u8> for Reg {
    type Error = u8;

    fn try_from(n: u8) -> Result<Reg, u8> {
        Reg::try_new(n).ok_or(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_zero() {
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::T0.is_zero());
    }

    #[test]
    fn all_yields_32_distinct() {
        let regs: Vec<Reg> = Reg::all().collect();
        assert_eq!(regs.len(), 32);
        for (i, r) in regs.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(Reg::ZERO.to_string(), "zero");
        assert_eq!(Reg::RA.to_string(), "ra");
        assert_eq!(Reg::SP.to_string(), "sp");
        assert_eq!(Reg::A0.to_string(), "a0");
        assert_eq!(Reg::T7.to_string(), "t7");
        assert_eq!(Reg::S3.to_string(), "s3");
        assert_eq!(Reg::G5.to_string(), "g5");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_out_of_range_panics() {
        let _ = Reg::new(32);
    }

    #[test]
    fn try_new_bounds() {
        assert_eq!(Reg::try_new(31), Some(Reg::G5));
        assert_eq!(Reg::try_new(32), None);
    }

    #[test]
    fn conversion_roundtrip() {
        for r in Reg::all() {
            assert_eq!(Reg::try_from(u8::from(r)), Ok(r));
        }
        assert!(Reg::try_from(200u8).is_err());
    }
}
