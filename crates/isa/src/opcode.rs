//! Opcodes and their static classification.

use std::fmt;

use crate::inst::MemWidth;

/// Condition tested by a conditional branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchCond {
    /// `rs1 == rs2`
    Eq,
    /// `rs1 != rs2`
    Ne,
    /// `rs1 < rs2` (signed)
    Lt,
    /// `rs1 >= rs2` (signed)
    Ge,
    /// `rs1 < rs2` (unsigned)
    Ltu,
    /// `rs1 >= rs2` (unsigned)
    Geu,
}

impl BranchCond {
    /// Evaluates the condition on two 64-bit register values.
    #[must_use]
    pub fn eval(self, a: u64, b: u64) -> bool {
        match self {
            BranchCond::Eq => a == b,
            BranchCond::Ne => a != b,
            BranchCond::Lt => (a as i64) < (b as i64),
            BranchCond::Ge => (a as i64) >= (b as i64),
            BranchCond::Ltu => a < b,
            BranchCond::Geu => a >= b,
        }
    }
}

/// Coarse classification of an opcode, used by the decoder, the emulator,
/// the deadness analysis and the pipeline to dispatch on instruction shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpcodeKind {
    /// Register–register ALU operation: `rd = rs1 op rs2`.
    AluRR,
    /// Register–immediate ALU operation: `rd = rs1 op imm`.
    AluRI,
    /// Load immediate: `rd = imm`.
    LoadImm,
    /// Memory load: `rd = mem[rs1 + imm]`.
    Load {
        /// Access width in bytes.
        width: MemWidth,
        /// Whether the loaded value is sign-extended.
        signed: bool,
    },
    /// Memory store: `mem[rs1 + imm] = rs2`.
    Store {
        /// Access width in bytes.
        width: MemWidth,
    },
    /// Conditional branch to the absolute instruction index in `imm`.
    Branch(BranchCond),
    /// Direct jump-and-link to the absolute instruction index in `imm`.
    Jal,
    /// Indirect jump-and-link to `rs1 + imm`.
    Jalr,
    /// Observable output of `rs1` (an architectural value sink).
    Out,
    /// Program termination.
    Halt,
    /// No operation.
    Nop,
}

macro_rules! opcodes {
    ($(#[$em:meta])* pub enum Opcode { $($(#[$m:meta])* $name:ident => ($mnem:literal, $kind:expr, $code:literal)),+ $(,)? }) => {
        $(#[$em])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[repr(u8)]
        pub enum Opcode {
            $($(#[$m])* $name = $code),+
        }

        impl Opcode {
            /// All opcodes, in encoding order.
            pub const ALL: &'static [Opcode] = &[$(Opcode::$name),+];

            /// Assembly mnemonic.
            #[must_use]
            pub fn mnemonic(self) -> &'static str {
                match self { $(Opcode::$name => $mnem),+ }
            }

            /// Coarse instruction-shape classification.
            #[must_use]
            pub fn kind(self) -> OpcodeKind {
                match self { $(Opcode::$name => $kind),+ }
            }

            /// Decodes an opcode from its binary code.
            #[must_use]
            pub fn from_code(code: u8) -> Option<Opcode> {
                match code {
                    $($code => Some(Opcode::$name),)+
                    _ => None,
                }
            }

            /// The opcode's binary code.
            #[inline]
            #[must_use]
            pub fn code(self) -> u8 {
                self as u8
            }
        }
    };
}

opcodes! {
    /// Every SIR operation.
    ///
    /// The numeric codes are the stable binary encoding used by
    /// [`Inst::encode`](crate::Inst::encode).
    pub enum Opcode {
        /// `rd = rs1 + rs2`
        Add => ("add", OpcodeKind::AluRR, 0),
        /// `rd = rs1 - rs2`
        Sub => ("sub", OpcodeKind::AluRR, 1),
        /// `rd = rs1 & rs2`
        And => ("and", OpcodeKind::AluRR, 2),
        /// `rd = rs1 | rs2`
        Or => ("or", OpcodeKind::AluRR, 3),
        /// `rd = rs1 ^ rs2`
        Xor => ("xor", OpcodeKind::AluRR, 4),
        /// `rd = rs1 << (rs2 & 63)`
        Sll => ("sll", OpcodeKind::AluRR, 5),
        /// `rd = rs1 >> (rs2 & 63)` (logical)
        Srl => ("srl", OpcodeKind::AluRR, 6),
        /// `rd = rs1 >> (rs2 & 63)` (arithmetic)
        Sra => ("sra", OpcodeKind::AluRR, 7),
        /// `rd = rs1 * rs2` (low 64 bits)
        Mul => ("mul", OpcodeKind::AluRR, 8),
        /// `rd = rs1 / rs2` (signed; -1 on division by zero)
        Div => ("div", OpcodeKind::AluRR, 9),
        /// `rd = rs1 % rs2` (signed; rs1 on division by zero)
        Rem => ("rem", OpcodeKind::AluRR, 10),
        /// `rd = (rs1 < rs2) as u64` (signed)
        Slt => ("slt", OpcodeKind::AluRR, 11),
        /// `rd = (rs1 < rs2) as u64` (unsigned)
        Sltu => ("sltu", OpcodeKind::AluRR, 12),

        /// `rd = rs1 + imm`
        Addi => ("addi", OpcodeKind::AluRI, 16),
        /// `rd = rs1 & imm`
        Andi => ("andi", OpcodeKind::AluRI, 17),
        /// `rd = rs1 | imm`
        Ori => ("ori", OpcodeKind::AluRI, 18),
        /// `rd = rs1 ^ imm`
        Xori => ("xori", OpcodeKind::AluRI, 19),
        /// `rd = rs1 << (imm & 63)`
        Slli => ("slli", OpcodeKind::AluRI, 20),
        /// `rd = rs1 >> (imm & 63)` (logical)
        Srli => ("srli", OpcodeKind::AluRI, 21),
        /// `rd = rs1 >> (imm & 63)` (arithmetic)
        Srai => ("srai", OpcodeKind::AluRI, 22),
        /// `rd = (rs1 < imm) as u64` (signed)
        Slti => ("slti", OpcodeKind::AluRI, 23),

        /// `rd = imm` (full 64-bit immediate)
        Li => ("li", OpcodeKind::LoadImm, 24),

        /// `rd = sext(mem8[rs1 + imm])`
        Lb => ("lb", OpcodeKind::Load { width: MemWidth::B1, signed: true }, 32),
        /// `rd = zext(mem8[rs1 + imm])`
        Lbu => ("lbu", OpcodeKind::Load { width: MemWidth::B1, signed: false }, 33),
        /// `rd = sext(mem16[rs1 + imm])`
        Lh => ("lh", OpcodeKind::Load { width: MemWidth::B2, signed: true }, 34),
        /// `rd = zext(mem16[rs1 + imm])`
        Lhu => ("lhu", OpcodeKind::Load { width: MemWidth::B2, signed: false }, 35),
        /// `rd = sext(mem32[rs1 + imm])`
        Lw => ("lw", OpcodeKind::Load { width: MemWidth::B4, signed: true }, 36),
        /// `rd = zext(mem32[rs1 + imm])`
        Lwu => ("lwu", OpcodeKind::Load { width: MemWidth::B4, signed: false }, 37),
        /// `rd = mem64[rs1 + imm]`
        Ld => ("ld", OpcodeKind::Load { width: MemWidth::B8, signed: false }, 38),

        /// `mem8[rs1 + imm] = rs2`
        Sb => ("sb", OpcodeKind::Store { width: MemWidth::B1 }, 40),
        /// `mem16[rs1 + imm] = rs2`
        Sh => ("sh", OpcodeKind::Store { width: MemWidth::B2 }, 41),
        /// `mem32[rs1 + imm] = rs2`
        Sw => ("sw", OpcodeKind::Store { width: MemWidth::B4 }, 42),
        /// `mem64[rs1 + imm] = rs2`
        Sd => ("sd", OpcodeKind::Store { width: MemWidth::B8 }, 43),

        /// Branch if `rs1 == rs2`.
        Beq => ("beq", OpcodeKind::Branch(BranchCond::Eq), 48),
        /// Branch if `rs1 != rs2`.
        Bne => ("bne", OpcodeKind::Branch(BranchCond::Ne), 49),
        /// Branch if `rs1 < rs2` (signed).
        Blt => ("blt", OpcodeKind::Branch(BranchCond::Lt), 50),
        /// Branch if `rs1 >= rs2` (signed).
        Bge => ("bge", OpcodeKind::Branch(BranchCond::Ge), 51),
        /// Branch if `rs1 < rs2` (unsigned).
        Bltu => ("bltu", OpcodeKind::Branch(BranchCond::Ltu), 52),
        /// Branch if `rs1 >= rs2` (unsigned).
        Bgeu => ("bgeu", OpcodeKind::Branch(BranchCond::Geu), 53),

        /// Jump-and-link to an absolute instruction index.
        Jal => ("jal", OpcodeKind::Jal, 56),
        /// Jump-and-link register: target is `rs1 + imm`.
        Jalr => ("jalr", OpcodeKind::Jalr, 57),

        /// Observable output of `rs1`.
        Out => ("out", OpcodeKind::Out, 60),
        /// Stop execution.
        Halt => ("halt", OpcodeKind::Halt, 61),
        /// No operation.
        Nop => ("nop", OpcodeKind::Nop, 62),
    }
}

impl Opcode {
    /// Whether this opcode writes a destination register (when `rd != zero`).
    #[must_use]
    pub fn has_dest(self) -> bool {
        matches!(
            self.kind(),
            OpcodeKind::AluRR
                | OpcodeKind::AluRI
                | OpcodeKind::LoadImm
                | OpcodeKind::Load { .. }
                | OpcodeKind::Jal
                | OpcodeKind::Jalr
        )
    }

    /// Whether this opcode is a memory load.
    #[must_use]
    pub fn is_load(self) -> bool {
        matches!(self.kind(), OpcodeKind::Load { .. })
    }

    /// Whether this opcode is a memory store.
    #[must_use]
    pub fn is_store(self) -> bool {
        matches!(self.kind(), OpcodeKind::Store { .. })
    }

    /// Whether this opcode is a conditional branch.
    #[must_use]
    pub fn is_cond_branch(self) -> bool {
        matches!(self.kind(), OpcodeKind::Branch(_))
    }

    /// Whether this opcode can redirect control flow (branches and jumps).
    #[must_use]
    pub fn is_control(self) -> bool {
        matches!(
            self.kind(),
            OpcodeKind::Branch(_) | OpcodeKind::Jal | OpcodeKind::Jalr | OpcodeKind::Halt
        )
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_roundtrip() {
        for &op in Opcode::ALL {
            assert_eq!(Opcode::from_code(op.code()), Some(op));
        }
    }

    #[test]
    fn codes_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for &op in Opcode::ALL {
            assert!(seen.insert(op.code()), "duplicate code for {op:?}");
        }
    }

    #[test]
    fn unknown_code_rejected() {
        assert_eq!(Opcode::from_code(255), None);
        assert_eq!(Opcode::from_code(13), None);
    }

    #[test]
    fn branch_cond_eval() {
        assert!(BranchCond::Eq.eval(3, 3));
        assert!(!BranchCond::Eq.eval(3, 4));
        assert!(BranchCond::Ne.eval(3, 4));
        assert!(BranchCond::Lt.eval((-1i64) as u64, 0));
        assert!(!BranchCond::Ltu.eval((-1i64) as u64, 0));
        assert!(BranchCond::Ge.eval(0, (-1i64) as u64));
        assert!(BranchCond::Geu.eval((-1i64) as u64, 0));
    }

    #[test]
    fn classification_consistency() {
        assert!(Opcode::Add.has_dest());
        assert!(Opcode::Ld.has_dest());
        assert!(Opcode::Jal.has_dest());
        assert!(!Opcode::Sd.has_dest());
        assert!(!Opcode::Beq.has_dest());
        assert!(!Opcode::Out.has_dest());
        assert!(Opcode::Lw.is_load());
        assert!(Opcode::Sw.is_store());
        assert!(Opcode::Bne.is_cond_branch());
        assert!(Opcode::Jalr.is_control());
        assert!(!Opcode::Add.is_control());
    }

    #[test]
    fn mnemonics_nonempty_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for &op in Opcode::ALL {
            assert!(!op.mnemonic().is_empty());
            assert!(seen.insert(op.mnemonic()));
        }
    }
}
