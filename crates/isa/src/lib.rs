//! SIR — a **S**imple **I**nstruction set for **R**eproduction.
//!
//! This crate defines the 64-bit load/store RISC instruction set used by the
//! DIDE reproduction of Butts & Sohi, *Dynamic dead-instruction detection and
//! elimination* (ASPLOS 2002). The original paper evaluated Alpha binaries;
//! SIR plays the role of the Alpha ISA: a register machine with a hardwired
//! zero register, simple ALU operations, byte-addressed loads and stores,
//! conditional branches, and calls/returns.
//!
//! The crate provides:
//!
//! * [`Reg`] — architectural register names (`r0` is hardwired to zero),
//! * [`Opcode`] and [`Inst`] — the instruction forms and their classification,
//! * [`Program`] — a validated container of instructions plus a data image,
//! * [`ProgramBuilder`] — a label-based assembler-style builder,
//! * binary [`Inst::encode`]/[`Inst::decode`] and a disassembler.
//!
//! # Example
//!
//! Build and disassemble a loop that sums the integers `0..10`:
//!
//! ```
//! use dide_isa::{ProgramBuilder, Reg};
//!
//! let mut b = ProgramBuilder::new("sum");
//! let (acc, i, n) = (Reg::T0, Reg::T1, Reg::T2);
//! b.li(acc, 0).li(i, 0).li(n, 10);
//! let top = b.label();
//! b.bind(top);
//! b.add(acc, acc, i);
//! b.addi(i, i, 1);
//! b.blt(i, n, top);
//! b.out(acc);
//! b.halt();
//! let program = b.build().expect("valid program");
//! assert!(program.len() > 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod image;
mod inst;
mod opcode;
mod program;
mod reg;

pub use builder::{Label, ProgramBuilder};
pub use image::ImageError;
pub use inst::{DecodeError, Inst, MemWidth, SourceIter};
pub use opcode::{BranchCond, Opcode, OpcodeKind};
pub use program::{Program, ProgramError};
pub use reg::Reg;

/// Byte size of one encoded instruction; PCs advance by this much.
pub const INST_BYTES: u64 = 4;

/// Base virtual address of the instruction image.
pub const TEXT_BASE: u64 = 0x0040_0000;

/// Base virtual address of the static data segment.
pub const DATA_BASE: u64 = 0x1000_0000;

/// Initial stack pointer (the stack grows toward lower addresses).
pub const STACK_BASE: u64 = 0x7fff_f000;

/// Converts an instruction index into its virtual PC.
#[inline]
#[must_use]
pub fn index_to_pc(index: u32) -> u64 {
    TEXT_BASE + u64::from(index) * INST_BYTES
}

/// Converts a virtual PC back into an instruction index.
///
/// Returns `None` if `pc` lies outside the text segment or is misaligned.
#[inline]
#[must_use]
pub fn pc_to_index(pc: u64) -> Option<u32> {
    let off = pc.checked_sub(TEXT_BASE)?;
    if off % INST_BYTES != 0 {
        return None;
    }
    u32::try_from(off / INST_BYTES).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pc_roundtrip() {
        for idx in [0u32, 1, 7, 1_000_000] {
            assert_eq!(pc_to_index(index_to_pc(idx)), Some(idx));
        }
    }

    #[test]
    fn pc_misaligned_rejected() {
        assert_eq!(pc_to_index(TEXT_BASE + 2), None);
    }

    #[test]
    fn pc_below_text_rejected() {
        assert_eq!(pc_to_index(TEXT_BASE - 4), None);
    }
}
