//! Validated program container.

use std::fmt;

use crate::inst::Inst;
use crate::opcode::OpcodeKind;
use crate::reg::Reg;
use crate::{index_to_pc, DATA_BASE};

/// A validated SIR program: a text segment of instructions plus an initial
/// data image placed at [`DATA_BASE`](crate::DATA_BASE).
///
/// Construct programs with [`ProgramBuilder`](crate::ProgramBuilder); direct
/// construction via [`Program::from_parts`] validates all control-flow
/// targets.
#[derive(Debug, PartialEq, Eq)]
pub struct Program {
    name: String,
    insts: Vec<Inst>,
    data: Vec<u8>,
    entry: u32,
}

/// Process-wide count of [`Program`] deep clones, see
/// [`Program::clone_count`].
static CLONE_COUNT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

impl Clone for Program {
    fn clone(&self) -> Program {
        CLONE_COUNT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Program {
            name: self.name.clone(),
            insts: self.insts.clone(),
            data: self.data.clone(),
            entry: self.entry,
        }
    }
}

/// Error produced when validating a [`Program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// The program contains no instructions.
    Empty,
    /// The entry index is outside the text segment.
    EntryOutOfRange {
        /// Offending entry index.
        entry: u32,
        /// Number of instructions in the program.
        len: usize,
    },
    /// A direct branch or jump targets an instruction index outside the text
    /// segment.
    TargetOutOfRange {
        /// Index of the offending instruction.
        at: u32,
        /// The out-of-range target.
        target: i64,
    },
    /// The program can fall off the end of the text segment (the last
    /// instruction is not an unconditional control transfer or `halt`).
    FallsOffEnd,
    /// A label was used but never bound (reported by the builder).
    UnboundLabel {
        /// The unbound label's id.
        label: usize,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::Empty => write!(f, "program has no instructions"),
            ProgramError::EntryOutOfRange { entry, len } => {
                write!(f, "entry index {entry} out of range for {len} instructions")
            }
            ProgramError::TargetOutOfRange { at, target } => {
                write!(f, "instruction {at} targets out-of-range index {target}")
            }
            ProgramError::FallsOffEnd => {
                write!(f, "control can fall off the end of the program")
            }
            ProgramError::UnboundLabel { label } => {
                write!(f, "label {label} was referenced but never bound")
            }
        }
    }
}

impl std::error::Error for ProgramError {}

impl Program {
    /// Builds a program from raw parts, validating it.
    ///
    /// # Errors
    ///
    /// Returns a [`ProgramError`] if the program is empty, the entry point or
    /// any direct control-flow target is out of range, or control can run off
    /// the end of the text segment.
    pub fn from_parts(
        name: impl Into<String>,
        insts: Vec<Inst>,
        data: Vec<u8>,
        entry: u32,
    ) -> Result<Program, ProgramError> {
        if insts.is_empty() {
            return Err(ProgramError::Empty);
        }
        if entry as usize >= insts.len() {
            return Err(ProgramError::EntryOutOfRange { entry, len: insts.len() });
        }
        for (i, inst) in insts.iter().enumerate() {
            match inst.op.kind() {
                OpcodeKind::Branch(_) | OpcodeKind::Jal
                    if (inst.imm < 0 || inst.imm as usize >= insts.len()) =>
                {
                    return Err(ProgramError::TargetOutOfRange { at: i as u32, target: inst.imm });
                }
                _ => {}
            }
        }
        let last = insts.last().expect("non-empty");
        let terminates =
            matches!(last.op.kind(), OpcodeKind::Halt | OpcodeKind::Jal | OpcodeKind::Jalr);
        if !terminates {
            return Err(ProgramError::FallsOffEnd);
        }
        Ok(Program { name: name.into(), insts, data, entry })
    }

    /// The program's name (used in reports).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The instructions of the text segment.
    #[must_use]
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// The instruction at `index`, or `None` when out of range.
    #[must_use]
    pub fn get(&self, index: u32) -> Option<&Inst> {
        self.insts.get(index as usize)
    }

    /// Number of static instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the text segment is empty (never true for a validated program).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Entry instruction index.
    #[must_use]
    pub fn entry(&self) -> u32 {
        self.entry
    }

    /// Process-wide number of deep [`Program`] clones performed so far.
    ///
    /// Cloning a program copies its whole text and data image, which the
    /// streaming pipeline is designed to avoid (consumers borrow the
    /// program). Tests snapshot this counter around a streamed run to prove
    /// no per-epoch clones sneak in.
    #[must_use]
    pub fn clone_count() -> u64 {
        CLONE_COUNT.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Initial bytes of the data segment, placed at
    /// [`DATA_BASE`](crate::DATA_BASE).
    #[must_use]
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Registers read anywhere in the program (an upper bound on liveness at
    /// entry, used by the workload generator's self-checks).
    #[must_use]
    pub fn registers_read(&self) -> Vec<Reg> {
        let mut seen = [false; Reg::COUNT];
        for inst in &self.insts {
            for src in inst.sources() {
                seen[src.index()] = true;
            }
        }
        Reg::all().filter(|r| seen[r.index()]).collect()
    }

    /// Renders a human-readable disassembly listing.
    ///
    /// The listing is also valid assembler input: it spells out a non-zero
    /// entry point as `.entry`, the initial data image as `.byte` rows
    /// inside a `.data`/`.text` pair, and each instruction prefixed by its
    /// index as a checkable marker — so re-assembling a program's listing
    /// reconstructs the program exactly (the round-trip property the
    /// `dide-asm` fuzz harness enforces).
    #[must_use]
    pub fn listing(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "; program `{}` — {} instructions, {} data bytes",
            self.name,
            self.insts.len(),
            self.data.len()
        );
        let _ = writeln!(
            out,
            "; entry @{} (pc {:#x}), data base {:#x}",
            self.entry,
            index_to_pc(self.entry),
            DATA_BASE
        );
        if self.entry != 0 {
            let _ = writeln!(out, ".entry {}", self.entry);
        }
        if !self.data.is_empty() {
            out.push_str(".data\n");
            for row in self.data.chunks(16) {
                out.push_str(".byte ");
                for (i, b) in row.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "{b:#04x}");
                }
                out.push('\n');
            }
            out.push_str(".text\n");
        }
        for (i, inst) in self.insts.iter().enumerate() {
            let _ = writeln!(out, "{i:6}: {inst}");
        }
        out
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.listing())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opcode::Opcode;

    fn halt() -> Inst {
        Inst::new(Opcode::Halt, Reg::ZERO, Reg::ZERO, Reg::ZERO, 0)
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(Program::from_parts("p", vec![], vec![], 0), Err(ProgramError::Empty));
    }

    #[test]
    fn entry_out_of_range_rejected() {
        let err = Program::from_parts("p", vec![halt()], vec![], 5).unwrap_err();
        assert!(matches!(err, ProgramError::EntryOutOfRange { entry: 5, len: 1 }));
    }

    #[test]
    fn branch_target_validated() {
        let insts = vec![Inst::new(Opcode::Beq, Reg::ZERO, Reg::T0, Reg::T1, 99), halt()];
        let err = Program::from_parts("p", insts, vec![], 0).unwrap_err();
        assert!(matches!(err, ProgramError::TargetOutOfRange { at: 0, target: 99 }));
    }

    #[test]
    fn negative_target_rejected() {
        let insts = vec![Inst::new(Opcode::Jal, Reg::ZERO, Reg::ZERO, Reg::ZERO, -1), halt()];
        assert!(Program::from_parts("p", insts, vec![], 0).is_err());
    }

    #[test]
    fn falling_off_end_rejected() {
        let insts = vec![Inst::nop()];
        assert_eq!(Program::from_parts("p", insts, vec![], 0), Err(ProgramError::FallsOffEnd));
    }

    #[test]
    fn valid_program_accepted() {
        let insts = vec![Inst::nop(), halt()];
        let p = Program::from_parts("p", insts, vec![1, 2, 3], 0).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.entry(), 0);
        assert_eq!(p.data(), &[1, 2, 3]);
        assert_eq!(p.name(), "p");
        assert!(p.get(0).is_some());
        assert!(p.get(2).is_none());
    }

    #[test]
    fn listing_contains_all_instructions() {
        let insts = vec![Inst::nop(), halt()];
        let p = Program::from_parts("demo", insts, vec![], 0).unwrap();
        let l = p.listing();
        assert!(l.contains("demo"));
        assert!(l.contains("nop"));
        assert!(l.contains("halt"));
        assert!(!l.contains(".data"), "no data section for an empty image");
        assert!(!l.contains(".entry"), "entry 0 is the default");
    }

    #[test]
    fn listing_spells_out_entry_and_data_image() {
        let insts = vec![Inst::nop(), halt()];
        let data: Vec<u8> = (0..18).collect();
        let p = Program::from_parts("demo", insts, data, 1).unwrap();
        let l = p.listing();
        assert!(l.contains(".entry 1"));
        assert!(l.contains(".data\n"));
        assert!(l.contains(".byte 0x00, 0x01,"), "first row starts at 0x00");
        assert!(l.contains(".byte 0x10, 0x11\n.text\n"), "18 bytes wrap to a second row");
    }

    #[test]
    fn registers_read_collects_sources() {
        let insts = vec![Inst::new(Opcode::Add, Reg::T2, Reg::T0, Reg::T1, 0), halt()];
        let p = Program::from_parts("p", insts, vec![], 0).unwrap();
        assert_eq!(p.registers_read(), vec![Reg::T0, Reg::T1]);
    }
}
