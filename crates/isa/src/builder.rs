//! Label-based assembler-style program builder.

use crate::inst::Inst;
use crate::opcode::Opcode;
use crate::program::{Program, ProgramError};
use crate::reg::Reg;

/// A forward-referenceable code label.
///
/// Created by [`ProgramBuilder::label`] and bound to the next emitted
/// instruction with [`ProgramBuilder::bind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Incremental builder for [`Program`]s, in the style of an assembler.
///
/// Branch and jump targets are [`Label`]s that may be bound before or after
/// use; all references are fixed up in [`ProgramBuilder::build`].
///
/// # Example
///
/// ```
/// use dide_isa::{ProgramBuilder, Reg};
///
/// let mut b = ProgramBuilder::new("count");
/// b.li(Reg::T0, 3);
/// let done = b.label();
/// let top = b.label();
/// b.bind(top);
/// b.beq(Reg::T0, Reg::ZERO, done);
/// b.addi(Reg::T0, Reg::T0, -1);
/// b.j(top);
/// b.bind(done);
/// b.halt();
/// let p = b.build().unwrap();
/// assert_eq!(p.len(), 5);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ProgramBuilder {
    name: String,
    insts: Vec<Inst>,
    data: Vec<u8>,
    /// labels[i] = instruction index the label is bound to (None if unbound).
    labels: Vec<Option<u32>>,
    /// (instruction index, label) pairs awaiting fixup.
    fixups: Vec<(usize, Label)>,
}

impl ProgramBuilder {
    /// Creates an empty builder for a program called `name`.
    #[must_use]
    pub fn new(name: impl Into<String>) -> ProgramBuilder {
        ProgramBuilder { name: name.into(), ..ProgramBuilder::default() }
    }

    /// Creates a fresh, unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the next emitted instruction.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound (each label marks one place).
    pub fn bind(&mut self, label: Label) -> &mut Self {
        let slot = &mut self.labels[label.0];
        assert!(slot.is_none(), "label bound twice");
        *slot = Some(self.insts.len() as u32);
        self
    }

    /// Index the next emitted instruction will have.
    #[must_use]
    pub fn here(&self) -> u32 {
        self.insts.len() as u32
    }

    /// Appends raw bytes to the data segment, returning their absolute
    /// virtual address.
    pub fn data_bytes(&mut self, bytes: &[u8]) -> u64 {
        let addr = crate::DATA_BASE + self.data.len() as u64;
        self.data.extend_from_slice(bytes);
        addr
    }

    /// Appends `count` zero bytes to the data segment, returning their
    /// absolute virtual address. Useful for reserving arrays.
    pub fn data_zeros(&mut self, count: usize) -> u64 {
        let addr = crate::DATA_BASE + self.data.len() as u64;
        self.data.resize(self.data.len() + count, 0);
        addr
    }

    /// Appends a little-endian `u64` to the data segment, returning its
    /// absolute virtual address.
    pub fn data_u64(&mut self, value: u64) -> u64 {
        self.data_bytes(&value.to_le_bytes())
    }

    /// Aligns the data segment to `align` bytes (must be a power of two).
    pub fn data_align(&mut self, align: usize) -> &mut Self {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        while !self.data.len().is_multiple_of(align) {
            self.data.push(0);
        }
        self
    }

    fn emit(&mut self, op: Opcode, rd: Reg, rs1: Reg, rs2: Reg, imm: i64) -> &mut Self {
        self.insts.push(Inst::new(op, rd, rs1, rs2, imm));
        self
    }

    fn emit_to_label(
        &mut self,
        op: Opcode,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
        label: Label,
    ) -> &mut Self {
        self.fixups.push((self.insts.len(), label));
        self.emit(op, rd, rs1, rs2, 0)
    }

    /// Emits a pre-formed instruction verbatim (no label fixup).
    pub fn raw(&mut self, inst: Inst) -> &mut Self {
        self.insts.push(inst);
        self
    }

    /// Finalizes the program, resolving all label references.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError::UnboundLabel`] if any referenced label was
    /// never bound, and any error produced by [`Program::from_parts`]
    /// validation.
    pub fn build(mut self) -> Result<Program, ProgramError> {
        for &(at, label) in &self.fixups {
            let target =
                self.labels[label.0].ok_or(ProgramError::UnboundLabel { label: label.0 })?;
            self.insts[at].imm = i64::from(target);
        }
        Program::from_parts(self.name, self.insts, self.data, 0)
    }
}

macro_rules! alu_rr {
    ($($(#[$m:meta])* $fn_name:ident => $op:ident),+ $(,)?) => {
        impl ProgramBuilder {
            $(
                $(#[$m])*
                pub fn $fn_name(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
                    self.emit(Opcode::$op, rd, rs1, rs2, 0)
                }
            )+
        }
    };
}

macro_rules! alu_ri {
    ($($(#[$m:meta])* $fn_name:ident => $op:ident),+ $(,)?) => {
        impl ProgramBuilder {
            $(
                $(#[$m])*
                pub fn $fn_name(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
                    self.emit(Opcode::$op, rd, rs1, Reg::ZERO, imm)
                }
            )+
        }
    };
}

macro_rules! mem_load {
    ($($(#[$m:meta])* $fn_name:ident => $op:ident),+ $(,)?) => {
        impl ProgramBuilder {
            $(
                $(#[$m])*
                pub fn $fn_name(&mut self, rd: Reg, base: Reg, offset: i64) -> &mut Self {
                    self.emit(Opcode::$op, rd, base, Reg::ZERO, offset)
                }
            )+
        }
    };
}

macro_rules! mem_store {
    ($($(#[$m:meta])* $fn_name:ident => $op:ident),+ $(,)?) => {
        impl ProgramBuilder {
            $(
                $(#[$m])*
                pub fn $fn_name(&mut self, src: Reg, base: Reg, offset: i64) -> &mut Self {
                    self.emit(Opcode::$op, Reg::ZERO, base, src, offset)
                }
            )+
        }
    };
}

macro_rules! branches {
    ($($(#[$m:meta])* $fn_name:ident => $op:ident),+ $(,)?) => {
        impl ProgramBuilder {
            $(
                $(#[$m])*
                pub fn $fn_name(&mut self, rs1: Reg, rs2: Reg, target: Label) -> &mut Self {
                    self.emit_to_label(Opcode::$op, Reg::ZERO, rs1, rs2, target)
                }
            )+
        }
    };
}

alu_rr! {
    /// `rd = rs1 + rs2`
    add => Add,
    /// `rd = rs1 - rs2`
    sub => Sub,
    /// `rd = rs1 & rs2`
    and => And,
    /// `rd = rs1 | rs2`
    or => Or,
    /// `rd = rs1 ^ rs2`
    xor => Xor,
    /// `rd = rs1 << (rs2 & 63)`
    sll => Sll,
    /// `rd = rs1 >> (rs2 & 63)` (logical)
    srl => Srl,
    /// `rd = rs1 >> (rs2 & 63)` (arithmetic)
    sra => Sra,
    /// `rd = rs1 * rs2`
    mul => Mul,
    /// `rd = rs1 / rs2` (signed)
    div => Div,
    /// `rd = rs1 % rs2` (signed)
    rem => Rem,
    /// `rd = (rs1 < rs2)` signed
    slt => Slt,
    /// `rd = (rs1 < rs2)` unsigned
    sltu => Sltu,
}

alu_ri! {
    /// `rd = rs1 + imm`
    addi => Addi,
    /// `rd = rs1 & imm`
    andi => Andi,
    /// `rd = rs1 | imm`
    ori => Ori,
    /// `rd = rs1 ^ imm`
    xori => Xori,
    /// `rd = rs1 << (imm & 63)`
    slli => Slli,
    /// `rd = rs1 >> (imm & 63)` (logical)
    srli => Srli,
    /// `rd = rs1 >> (imm & 63)` (arithmetic)
    srai => Srai,
    /// `rd = (rs1 < imm)` signed
    slti => Slti,
}

mem_load! {
    /// `rd = sext(mem8[base + offset])`
    lb => Lb,
    /// `rd = zext(mem8[base + offset])`
    lbu => Lbu,
    /// `rd = sext(mem16[base + offset])`
    lh => Lh,
    /// `rd = zext(mem16[base + offset])`
    lhu => Lhu,
    /// `rd = sext(mem32[base + offset])`
    lw => Lw,
    /// `rd = zext(mem32[base + offset])`
    lwu => Lwu,
    /// `rd = mem64[base + offset]`
    ld => Ld,
}

mem_store! {
    /// `mem8[base + offset] = src`
    sb => Sb,
    /// `mem16[base + offset] = src`
    sh => Sh,
    /// `mem32[base + offset] = src`
    sw => Sw,
    /// `mem64[base + offset] = src`
    sd => Sd,
}

branches! {
    /// Branch to `target` if `rs1 == rs2`.
    beq => Beq,
    /// Branch to `target` if `rs1 != rs2`.
    bne => Bne,
    /// Branch to `target` if `rs1 < rs2` (signed).
    blt => Blt,
    /// Branch to `target` if `rs1 >= rs2` (signed).
    bge => Bge,
    /// Branch to `target` if `rs1 < rs2` (unsigned).
    bltu => Bltu,
    /// Branch to `target` if `rs1 >= rs2` (unsigned).
    bgeu => Bgeu,
}

impl ProgramBuilder {
    /// `rd = imm` (full 64-bit immediate).
    pub fn li(&mut self, rd: Reg, imm: i64) -> &mut Self {
        self.emit(Opcode::Li, rd, Reg::ZERO, Reg::ZERO, imm)
    }

    /// Loads an unsigned 64-bit immediate (convenience over [`Self::li`]).
    pub fn li_u64(&mut self, rd: Reg, imm: u64) -> &mut Self {
        self.li(rd, imm as i64)
    }

    /// Copy `rs1` into `rd` (`add rd, rs1, zero`).
    pub fn mv(&mut self, rd: Reg, rs1: Reg) -> &mut Self {
        self.emit(Opcode::Add, rd, rs1, Reg::ZERO, 0)
    }

    /// Unconditional jump to `target` (a `jal` that discards the link).
    pub fn j(&mut self, target: Label) -> &mut Self {
        self.emit_to_label(Opcode::Jal, Reg::ZERO, Reg::ZERO, Reg::ZERO, target)
    }

    /// Call: `jal ra, target`.
    pub fn call(&mut self, target: Label) -> &mut Self {
        self.emit_to_label(Opcode::Jal, Reg::RA, Reg::ZERO, Reg::ZERO, target)
    }

    /// Return: `jalr zero, 0(ra)`.
    pub fn ret(&mut self) -> &mut Self {
        self.emit(Opcode::Jalr, Reg::ZERO, Reg::RA, Reg::ZERO, 0)
    }

    /// Indirect jump-and-link: `rd = pc + 1; pc = rs1 + imm` (as instruction
    /// indices).
    pub fn jalr(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.emit(Opcode::Jalr, rd, rs1, Reg::ZERO, imm)
    }

    /// Emits the observable output of `rs1`.
    pub fn out(&mut self, rs1: Reg) -> &mut Self {
        self.emit(Opcode::Out, Reg::ZERO, rs1, Reg::ZERO, 0)
    }

    /// Stops execution.
    pub fn halt(&mut self) -> &mut Self {
        self.emit(Opcode::Halt, Reg::ZERO, Reg::ZERO, Reg::ZERO, 0)
    }

    /// Emits a no-op.
    pub fn nop(&mut self) -> &mut Self {
        self.emit(Opcode::Nop, Reg::ZERO, Reg::ZERO, Reg::ZERO, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opcode::Opcode;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut b = ProgramBuilder::new("labels");
        let fwd = b.label();
        b.j(fwd); // index 0 -> 2
        b.nop(); // index 1 (skipped)
        b.bind(fwd);
        let back = b.label();
        b.bind(back);
        b.beq(Reg::ZERO, Reg::ZERO, back); // index 2 -> 2
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.insts()[0].imm, 2);
        assert_eq!(p.insts()[2].imm, 2);
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut b = ProgramBuilder::new("bad");
        let l = b.label();
        b.j(l);
        b.halt();
        assert!(matches!(b.build(), Err(ProgramError::UnboundLabel { label: 0 })));
    }

    #[test]
    #[should_panic(expected = "label bound twice")]
    fn double_bind_panics() {
        let mut b = ProgramBuilder::new("bad");
        let l = b.label();
        b.bind(l);
        b.bind(l);
    }

    #[test]
    fn data_helpers_compute_addresses() {
        let mut b = ProgramBuilder::new("data");
        let a0 = b.data_u64(7);
        assert_eq!(a0, crate::DATA_BASE);
        let a1 = b.data_bytes(&[1, 2, 3]);
        assert_eq!(a1, crate::DATA_BASE + 8);
        b.data_align(8);
        let a2 = b.data_zeros(16);
        assert_eq!(a2, crate::DATA_BASE + 16);
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.data().len(), 32);
        assert_eq!(&p.data()[0..8], &7u64.to_le_bytes());
    }

    #[test]
    fn convenience_forms_encode_expected_ops() {
        let mut b = ProgramBuilder::new("forms");
        b.mv(Reg::T0, Reg::T1);
        b.li(Reg::T2, -5);
        b.out(Reg::T2);
        b.ret();
        let p = b.build().unwrap();
        assert_eq!(p.insts()[0].op, Opcode::Add);
        assert_eq!(p.insts()[0].rs2, Reg::ZERO);
        assert_eq!(p.insts()[1].imm, -5);
        assert_eq!(p.insts()[2].op, Opcode::Out);
        assert_eq!(p.insts()[3].op, Opcode::Jalr);
        assert_eq!(p.insts()[3].rs1, Reg::RA);
    }

    #[test]
    fn here_tracks_next_index() {
        let mut b = ProgramBuilder::new("here");
        assert_eq!(b.here(), 0);
        b.nop();
        assert_eq!(b.here(), 1);
    }

    #[test]
    fn call_links_ra() {
        let mut b = ProgramBuilder::new("call");
        let f = b.label();
        b.call(f);
        b.halt();
        b.bind(f);
        b.ret();
        let p = b.build().unwrap();
        assert_eq!(p.insts()[0].op, Opcode::Jal);
        assert_eq!(p.insts()[0].rd, Reg::RA);
        assert_eq!(p.insts()[0].imm, 2);
    }

    #[test]
    fn raw_is_not_fixed_up() {
        let mut b = ProgramBuilder::new("raw");
        b.raw(crate::Inst::new(Opcode::Jal, Reg::ZERO, Reg::ZERO, Reg::ZERO, 1));
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.insts()[0].imm, 1);
    }
}
