//! An independently written reference liveness oracle.
//!
//! [`ReferenceOracle`] recomputes the per-instruction deadness verdicts of a
//! trace with an algorithm deliberately different from
//! [`dide_analysis::DeadnessAnalysis`]:
//!
//! * first-level deadness comes from a **reverse scan** that tracks, per
//!   architectural register and per memory byte, the *fate* of a value
//!   written at this point (read next / overwritten next / untouched until
//!   the program ends) — rather than the analysis's forward displacement
//!   hints;
//! * usefulness comes from an explicit **worklist BFS** from the observable
//!   roots over producer edges — rather than the analysis's single reverse
//!   sweep over a flattened producer table.
//!
//! The two implementations share only the verdict vocabulary
//! ([`Verdict`]/[`DeadKind`]); every traversal, data structure, and
//! classification decision is independent, so a bug in either side shows up
//! as a verdict mismatch in the differential check ([`crate::diff`]).
//!
//! Cost is `O(n · regs)` time and `O(n)` space for a trace of `n` dynamic
//! instructions — deliberately naive; this oracle referees correctness, it
//! does not race the production analysis.

use std::collections::HashMap;

use dide_analysis::{DeadKind, Verdict};
use dide_emu::Trace;
use dide_isa::{OpcodeKind, Reg};

/// What eventually happens, looking forward in time, to a value that is
/// live in a register or memory byte at some point of the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fate {
    /// Nothing later touches it: it survives to the end of the program.
    Untouched,
    /// The next event is a write that destroys it.
    Overwritten,
    /// The next event is a read.
    Read,
}

/// Reference deadness verdicts for every dynamic instruction of a trace.
#[derive(Debug, Clone)]
pub struct ReferenceOracle {
    verdicts: Vec<Verdict>,
}

impl ReferenceOracle {
    /// Recomputes verdicts for `trace` from scratch.
    #[must_use]
    pub fn analyze(trace: &Trace) -> ReferenceOracle {
        ReferenceOracle { verdicts: compute_verdicts(trace, true) }
    }

    /// The verdict for dynamic instruction `seq`.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range for the analyzed trace.
    #[must_use]
    pub fn verdict(&self, seq: u64) -> Verdict {
        self.verdicts[seq as usize]
    }

    /// Whether dynamic instruction `seq` is dead.
    #[must_use]
    pub fn is_dead(&self, seq: u64) -> bool {
        self.verdicts[seq as usize].is_dead()
    }

    /// All verdicts, indexed by seq.
    #[must_use]
    pub fn verdicts(&self) -> &[Verdict] {
        &self.verdicts
    }
}

/// A deliberately broken oracle variant for mutation smoke tests: `out`
/// instructions are not treated as usefulness roots, so values that are
/// only ever printed get classified dead. The differential check must
/// catch this — if it does not, the net has a hole.
#[cfg(test)]
fn broken_reference_verdicts(trace: &Trace) -> Vec<Verdict> {
    compute_verdicts(trace, false)
}

/// Whether this record anchors usefulness: control flow, observable
/// output, and program termination are always useful.
fn is_root(kind: OpcodeKind, out_is_root: bool) -> bool {
    match kind {
        OpcodeKind::Branch(_) | OpcodeKind::Jal | OpcodeKind::Jalr | OpcodeKind::Halt => true,
        OpcodeKind::Out => out_is_root,
        _ => false,
    }
}

fn compute_verdicts(trace: &Trace, out_is_root: bool) -> Vec<Verdict> {
    let records = trace.records();
    let n = records.len();

    // ---- pass 1 (reverse): per-value fates -> first-level classification.
    //
    // `reg_fate[r]` / `byte_fate[a]` describe the next thing that happens,
    // in forward time, to a value sitting in register `r` / byte `a` at the
    // current scan position. A write classifies the value it produces from
    // the fate recorded *after* it, then flips the fate to `Overwritten`;
    // reads flip fates to `Read`. Within one instruction the reads precede
    // the write in forward time, so in reverse they are applied last.
    let mut reg_fate = [Fate::Untouched; Reg::COUNT];
    let mut byte_fate: HashMap<u64, Fate> = HashMap::new();
    let mut directly_read = vec![false; n];
    let mut first_level: Vec<Option<DeadKind>> = vec![None; n];

    for r in records.iter().rev() {
        let seq = r.seq as usize;
        if let Some(rd) = r.dest() {
            match reg_fate[rd.index()] {
                Fate::Read => directly_read[seq] = true,
                Fate::Overwritten => first_level[seq] = Some(DeadKind::RegOverwritten),
                Fate::Untouched => first_level[seq] = Some(DeadKind::RegUnread),
            }
            reg_fate[rd.index()] = Fate::Overwritten;
        }
        if r.op.is_store() {
            let acc = r.mem().expect("stores carry a memory access");
            let fates: Vec<Fate> =
                acc.bytes().map(|b| *byte_fate.get(&b).unwrap_or(&Fate::Untouched)).collect();
            if fates.contains(&Fate::Read) {
                directly_read[seq] = true;
            } else if fates.iter().all(|&f| f == Fate::Overwritten) {
                first_level[seq] = Some(DeadKind::StoreOverwritten);
            } else {
                first_level[seq] = Some(DeadKind::StoreUnread);
            }
            for b in acc.bytes() {
                byte_fate.insert(b, Fate::Overwritten);
            }
        }
        for src in r.sources() {
            if !src.is_zero() {
                reg_fate[src.index()] = Fate::Read;
            }
        }
        if r.op.is_load() {
            let acc = r.mem().expect("loads carry a memory access");
            for b in acc.bytes() {
                byte_fate.insert(b, Fate::Read);
            }
        }
    }

    // ---- pass 2 (forward): resolve each read to its producer seq.
    let mut reg_writer: [Option<u64>; Reg::COUNT] = [None; Reg::COUNT];
    let mut byte_writer: HashMap<u64, u64> = HashMap::new();
    let mut producers_of: Vec<Vec<u64>> = vec![Vec::new(); n];

    for r in records {
        let seq = r.seq as usize;
        for src in r.sources() {
            if let Some(w) = reg_writer[src.index()] {
                if !producers_of[seq].contains(&w) {
                    producers_of[seq].push(w);
                }
            }
        }
        if r.op.is_load() {
            for b in r.mem().expect("loads carry a memory access").bytes() {
                if let Some(&w) = byte_writer.get(&b) {
                    if !producers_of[seq].contains(&w) {
                        producers_of[seq].push(w);
                    }
                }
            }
        }
        if let Some(rd) = r.dest() {
            reg_writer[rd.index()] = Some(r.seq);
        }
        if r.op.is_store() {
            for b in r.mem().expect("stores carry a memory access").bytes() {
                byte_writer.insert(b, r.seq);
            }
        }
    }

    // ---- pass 3: worklist BFS from the roots over producer edges.
    //
    // `useful[i]` means instruction `i`'s value is (transitively) consumed
    // by a root. Roots themselves seed the queue with their producers.
    let mut useful = vec![false; n];
    let mut queue: Vec<u64> = Vec::new();
    for r in records {
        if is_root(r.op.kind(), out_is_root) {
            for &p in &producers_of[r.seq as usize] {
                if !useful[p as usize] {
                    useful[p as usize] = true;
                    queue.push(p);
                }
            }
        }
    }
    while let Some(i) = queue.pop() {
        for &p in &producers_of[i as usize] {
            if !useful[p as usize] {
                useful[p as usize] = true;
                queue.push(p);
            }
        }
    }

    // ---- verdict assembly.
    records
        .iter()
        .map(|r| {
            let seq = r.seq as usize;
            let eligible = (r.dest().is_some() && !r.op.is_control()) || r.op.is_store();
            if !eligible {
                Verdict::NotEligible
            } else if useful[seq] {
                Verdict::Useful
            } else if directly_read[seq] {
                Verdict::Dead(DeadKind::Transitive)
            } else {
                Verdict::Dead(
                    first_level[seq].expect("unread eligible value has a first-level kind"),
                )
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::differential_verdicts;
    use dide_analysis::DeadnessAnalysis;
    use dide_emu::Emulator;
    use dide_isa::{ProgramBuilder, Reg};

    fn run(b: ProgramBuilder) -> Trace {
        Emulator::new(&b.build().unwrap()).run().unwrap()
    }

    #[test]
    fn classifies_the_canonical_cases() {
        let mut b = ProgramBuilder::new("t");
        b.li(Reg::T0, 1); // 0: overwritten by 1
        b.li(Reg::T0, 2); // 1: useful (printed)
        b.out(Reg::T0); // 2: not eligible
        b.li(Reg::T1, 3); // 3: unread at exit
        b.halt(); // 4
        let o = ReferenceOracle::analyze(&run(b));
        assert_eq!(o.verdict(0), Verdict::Dead(DeadKind::RegOverwritten));
        assert_eq!(o.verdict(1), Verdict::Useful);
        assert_eq!(o.verdict(2), Verdict::NotEligible);
        assert_eq!(o.verdict(3), Verdict::Dead(DeadKind::RegUnread));
        assert!(o.is_dead(0));
        assert_eq!(o.verdicts().len(), 5);
    }

    #[test]
    fn transitive_chain_matches_analysis() {
        let mut b = ProgramBuilder::new("t");
        b.li(Reg::T0, 1);
        for _ in 0..6 {
            b.addi(Reg::T0, Reg::T0, 1);
        }
        b.halt();
        let t = run(b);
        let o = ReferenceOracle::analyze(&t);
        for seq in 0..6 {
            assert_eq!(o.verdict(seq), Verdict::Dead(DeadKind::Transitive), "seq {seq}");
        }
        assert_eq!(o.verdict(6), Verdict::Dead(DeadKind::RegUnread));
        assert!(differential_verdicts(&t, &DeadnessAnalysis::analyze(&t)).is_empty());
    }

    #[test]
    fn partial_store_overwrite_is_store_unread() {
        let mut b = ProgramBuilder::new("t");
        b.li(Reg::T0, -1);
        b.sd(Reg::T0, Reg::SP, -8); // 1: only half overwritten, never read
        b.sw(Reg::ZERO, Reg::SP, -8);
        b.halt();
        let o = ReferenceOracle::analyze(&run(b));
        assert_eq!(o.verdict(1), Verdict::Dead(DeadKind::StoreUnread));
    }

    #[test]
    fn full_store_overwrite_is_store_overwritten() {
        let mut b = ProgramBuilder::new("t");
        b.li(Reg::T0, -1);
        b.sd(Reg::T0, Reg::SP, -8); // 1: both halves overwritten
        b.sw(Reg::ZERO, Reg::SP, -8);
        b.sw(Reg::ZERO, Reg::SP, -4);
        b.halt();
        let o = ReferenceOracle::analyze(&run(b));
        assert_eq!(o.verdict(1), Verdict::Dead(DeadKind::StoreOverwritten));
    }

    #[test]
    fn store_read_through_overlapping_load_is_useful() {
        let mut b = ProgramBuilder::new("t");
        b.li(Reg::T0, 0x1234_5678);
        b.sd(Reg::T0, Reg::SP, -8);
        b.lb(Reg::T1, Reg::SP, -5); // reads one byte of the store
        b.out(Reg::T1);
        b.halt();
        let o = ReferenceOracle::analyze(&run(b));
        assert_eq!(o.verdict(1), Verdict::Useful);
    }

    #[test]
    fn value_feeding_branch_is_useful() {
        let mut b = ProgramBuilder::new("t");
        b.li(Reg::T0, 1);
        let l = b.label();
        b.beq(Reg::T0, Reg::ZERO, l);
        b.bind(l);
        b.halt();
        let o = ReferenceOracle::analyze(&run(b));
        assert_eq!(o.verdict(0), Verdict::Useful);
        assert_eq!(o.verdict(1), Verdict::NotEligible);
    }

    #[test]
    fn zero_register_write_consumer_is_not_useful() {
        let mut b = ProgramBuilder::new("t");
        b.li(Reg::T0, 5); // 0: read only by a discarded write
        b.add(Reg::ZERO, Reg::T0, Reg::T0); // 1: not eligible, not a root
        b.halt();
        let o = ReferenceOracle::analyze(&run(b));
        assert_eq!(o.verdict(1), Verdict::NotEligible);
        assert_eq!(o.verdict(0), Verdict::Dead(DeadKind::Transitive));
    }

    #[test]
    fn mutation_smoke_broken_oracle_is_caught() {
        // The broken variant drops `out` from the root set. On any program
        // whose outputs depend on computed values, it must disagree with
        // the real analysis — proving the differential net catches bugs.
        let mut b = ProgramBuilder::new("t");
        b.li(Reg::T0, 41);
        b.addi(Reg::T0, Reg::T0, 1);
        b.out(Reg::T0);
        b.halt();
        let t = run(b);
        let analysis = DeadnessAnalysis::analyze(&t);
        let broken = broken_reference_verdicts(&t);
        assert!(differential_verdicts(&t, &analysis).is_empty(), "healthy oracle agrees");
        let disagreements: Vec<u64> =
            (0..t.len() as u64).filter(|&s| broken[s as usize] != analysis.verdict(s)).collect();
        assert!(!disagreements.is_empty(), "the seeded bug must be visible as a verdict diff");
    }
}
