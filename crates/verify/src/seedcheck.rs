//! One fuzzing seed, end to end: generate, emulate, cross-check.
//!
//! [`verify_seed`] is the unit of work the `dide verify` driver fans out
//! over its worker pool. Everything here is deterministic in `(seed,
//! config)` so reports are byte-identical regardless of job count.

use std::fmt::Write as _;

use dide_analysis::DeadnessAnalysis;
use dide_emu::Emulator;
use dide_workloads::{random_program, GenConfig};

use crate::diff::differential_verdicts;
use crate::invariants::check_invariants;
use crate::stream::check_streaming;

/// Everything the driver needs to know about one verified seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeedReport {
    /// The generator seed.
    pub seed: u64,
    /// The generator configuration used (derived from the seed unless the
    /// case came from the corpus).
    pub config: GenConfig,
    /// Dynamic instructions in the generated trace (0 if emulation failed).
    pub trace_len: usize,
    /// Oracle-dead dynamic instructions in the trace.
    pub dead_total: u64,
    /// Rendered verdict disagreements between the two oracles.
    pub mismatches: Vec<String>,
    /// Rendered metamorphic-invariant violations.
    pub violations: Vec<String>,
}

impl SeedReport {
    /// Whether this seed passed every check.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.mismatches.is_empty() && self.violations.is_empty()
    }

    /// A short single-line summary, plus one indented line per failure.
    #[must_use]
    pub fn describe(&self) -> String {
        let mut s = format!(
            "seed {:#018x} ({} insts, {} dead): {} mismatches, {} violations",
            self.seed,
            self.trace_len,
            self.dead_total,
            self.mismatches.len(),
            self.violations.len()
        );
        for m in &self.mismatches {
            let _ = write!(s, "\n  diff: {m}");
        }
        for v in &self.violations {
            let _ = write!(s, "\n  invariant: {v}");
        }
        s
    }
}

/// Derives a deterministic generator configuration from a seed, so the
/// fuzzer sweeps program *shapes* as well as contents. Ranges are chosen
/// to keep a single seed cheap (a few thousand dynamic instructions at
/// most) while still covering loops, nests of diamonds, and tight memory.
#[must_use]
pub fn derive_config(seed: u64) -> GenConfig {
    // The canonical splitmix64 mapping lives beside the generator itself
    // (shared with the campaign engine's `gen:<seed>` workloads); this
    // re-export keeps the historical `dide-verify` entry point.
    GenConfig::derived(seed)
}

/// Verifies one seed with its derived configuration.
#[must_use]
pub fn verify_seed(seed: u64) -> SeedReport {
    verify_seed_with(seed, &derive_config(seed))
}

/// Verifies one seed with an explicit configuration (corpus replay and
/// shrinking run reduced configs against the original seed).
#[must_use]
pub fn verify_seed_with(seed: u64, config: &GenConfig) -> SeedReport {
    let mut report = SeedReport {
        seed,
        config: *config,
        trace_len: 0,
        dead_total: 0,
        mismatches: Vec::new(),
        violations: Vec::new(),
    };
    if let Err(e) = config.validate() {
        report.violations.push(format!("invalid config: {e}"));
        return report;
    }
    let program = random_program(seed, config);
    let trace = match Emulator::new(&program).run() {
        Ok(t) => t,
        Err(e) => {
            report.violations.push(format!("emulation failed: {e}"));
            return report;
        }
    };
    report.trace_len = trace.len();
    let analysis = DeadnessAnalysis::analyze(&trace);
    report.dead_total = analysis.stats().dead_total;
    report.mismatches =
        differential_verdicts(&trace, &analysis).iter().map(ToString::to_string).collect();
    report.violations = check_invariants(&trace, &analysis);
    report.violations.extend(check_streaming(&program, &trace, &analysis));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_configs_are_deterministic_and_valid() {
        for seed in 0..200u64 {
            let a = derive_config(seed);
            assert_eq!(a, derive_config(seed));
            a.validate().expect("derived configs are always valid");
            assert!((2..=10).contains(&a.segments));
            assert!((4..=16).contains(&a.segment_len));
            assert!((1..=6).contains(&a.loop_iters));
            assert!((4..=24).contains(&a.memory_slots));
        }
        // The derivation actually varies the shape.
        assert_ne!(derive_config(1), derive_config(2));
    }

    #[test]
    fn a_healthy_seed_is_clean() {
        let r = verify_seed(0);
        assert!(r.is_clean(), "{}", r.describe());
        assert!(r.trace_len > 0);
        assert_eq!(r, verify_seed(0), "verification is deterministic");
    }

    #[test]
    fn invalid_config_is_reported_not_panicked() {
        let r = verify_seed_with(1, &GenConfig { segments: 0, ..GenConfig::default() });
        assert!(!r.is_clean());
        assert!(r.violations[0].contains("invalid config"));
    }

    #[test]
    fn describe_includes_failures() {
        let mut r = verify_seed(0);
        r.mismatches.push("synthetic".into());
        let text = r.describe();
        assert!(text.contains("1 mismatches"));
        assert!(text.contains("diff: synthetic"));
    }
}
