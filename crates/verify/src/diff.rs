//! Verdict-by-verdict comparison of the production analysis against the
//! reference oracle.

use std::fmt;

use dide_analysis::{DeadnessAnalysis, Verdict};
use dide_emu::Trace;

use crate::oracle::ReferenceOracle;

/// One dynamic instruction on which the two oracles disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerdictMismatch {
    /// Dynamic sequence number of the disagreement.
    pub seq: u64,
    /// Static instruction index.
    pub index: u32,
    /// Disassembly of the instruction, for the report.
    pub disasm: String,
    /// What `DeadnessAnalysis` said.
    pub analysis: Verdict,
    /// What the reference oracle said.
    pub reference: Verdict,
}

impl fmt::Display for VerdictMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seq {} (inst {}: {}): analysis says {:?}, reference says {:?}",
            self.seq, self.index, self.disasm, self.analysis, self.reference
        )
    }
}

/// Runs the reference oracle over `trace` and returns every dynamic
/// instruction where it disagrees with `analysis`. An empty result means
/// the two independent implementations agree on the whole trace.
#[must_use]
pub fn differential_verdicts(trace: &Trace, analysis: &DeadnessAnalysis) -> Vec<VerdictMismatch> {
    let reference = ReferenceOracle::analyze(trace);
    trace
        .iter()
        .filter_map(|r| {
            let a = analysis.verdict(r.seq);
            let b = reference.verdict(r.seq);
            if a == b {
                None
            } else {
                Some(VerdictMismatch {
                    seq: r.seq,
                    index: r.index,
                    disasm: trace
                        .program()
                        .get(r.index)
                        .map_or_else(|| "<?>".to_string(), ToString::to_string),
                    analysis: a,
                    reference: b,
                })
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dide_emu::Emulator;
    use dide_isa::{ProgramBuilder, Reg};
    use dide_workloads::{random_program, GenConfig};

    #[test]
    fn agrees_on_a_straight_line_program() {
        let mut b = ProgramBuilder::new("t");
        b.li(Reg::T0, 1);
        b.li(Reg::T0, 2);
        b.out(Reg::T0);
        b.halt();
        let t = Emulator::new(&b.build().unwrap()).run().unwrap();
        let analysis = DeadnessAnalysis::analyze(&t);
        assert!(differential_verdicts(&t, &analysis).is_empty());
    }

    #[test]
    fn agrees_on_random_programs() {
        for seed in 0..32u64 {
            let cfg = GenConfig::default();
            let t = Emulator::new(&random_program(seed, &cfg)).run().unwrap();
            let analysis = DeadnessAnalysis::analyze(&t);
            let diffs = differential_verdicts(&t, &analysis);
            assert!(diffs.is_empty(), "seed {seed}: first mismatch: {}", diffs[0]);
        }
    }

    #[test]
    fn mismatch_display_is_readable() {
        let m = VerdictMismatch {
            seq: 7,
            index: 3,
            disasm: "li t0, 5".into(),
            analysis: Verdict::Useful,
            reference: Verdict::NotEligible,
        };
        let text = m.to_string();
        assert!(text.contains("seq 7"));
        assert!(text.contains("li t0, 5"));
    }
}
