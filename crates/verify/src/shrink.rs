//! Failing-case minimization.
//!
//! A fuzzing failure is only as useful as it is small. [`shrink_case`]
//! minimizes the *generator configuration* of a failing seed — fewer
//! segments, shorter segments, fewer loop iterations, less memory — while
//! re-checking that the failure survives, and iterates to a fixpoint.
//! (Draw-level shrinking of individual property inputs lives in the
//! `proptest` shim; this is the whole-program analogue.)

use dide_workloads::GenConfig;

/// Minimizes `config` field by field (binary search per field, smallest
/// failing value wins) such that `fails(seed, &minimized)` still returns
/// true. `fails` must be deterministic; it is called O(log) times per
/// field per round, and rounds repeat until no field shrinks further.
///
/// Returns `config` unchanged if it does not fail in the first place.
pub fn shrink_case<F: FnMut(u64, &GenConfig) -> bool>(
    seed: u64,
    config: &GenConfig,
    mut fails: F,
) -> GenConfig {
    if !fails(seed, config) {
        return *config;
    }
    let mut best = *config;
    // Each accessor pair reads/writes one field as u64 so one binary
    // search routine covers all four.
    type Get = fn(&GenConfig) -> u64;
    type Set = fn(&mut GenConfig, u64);
    let fields: [(Get, Set); 4] = [
        (|c| c.segments as u64, |c, v| c.segments = v as usize),
        (|c| c.segment_len as u64, |c, v| c.segment_len = v as usize),
        (|c| u64::from(c.loop_iters), |c, v| c.loop_iters = v as u32),
        (|c| c.memory_slots as u64, |c, v| c.memory_slots = v as usize),
    ];
    loop {
        let before = best;
        for (get, set) in fields {
            // Invariant: `best` fails. Find the smallest value in [1, cur]
            // for this field that still fails, assuming rough monotonicity;
            // when the failure is not monotone in the field the search
            // still returns *a* failing value, just not always the global
            // minimum — acceptable for a shrinker.
            let (mut lo, mut hi) = (1u64, get(&best));
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                let mut candidate = best;
                set(&mut candidate, mid);
                if fails(seed, &candidate) {
                    best = candidate;
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
        }
        if best == before {
            return best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_failing_config_is_untouched() {
        let cfg = GenConfig::default();
        assert_eq!(shrink_case(0, &cfg, |_, _| false), cfg);
    }

    #[test]
    fn monotone_failure_shrinks_to_its_threshold() {
        // Fails whenever segments * segment_len >= 6: the minimum is found
        // on both contributing fields.
        let cfg = GenConfig { segments: 8, segment_len: 12, loop_iters: 5, memory_slots: 16 };
        let shrunk = shrink_case(0, &cfg, |_, c| c.segments * c.segment_len >= 6);
        assert!(shrunk.segments * shrunk.segment_len >= 6, "failure must be preserved");
        assert_eq!(shrunk.loop_iters, 1);
        assert_eq!(shrunk.memory_slots, 1);
        assert!(shrunk.segments <= 2 && shrunk.segment_len <= 6, "{shrunk:?}");
    }

    #[test]
    fn always_failing_case_reaches_the_floor() {
        let shrunk = shrink_case(0, &GenConfig::default(), |_, _| true);
        assert_eq!(
            shrunk,
            GenConfig { segments: 1, segment_len: 1, loop_iters: 1, memory_slots: 1 }
        );
    }

    #[test]
    fn shrinking_is_deterministic() {
        let f = |_: u64, c: &GenConfig| c.segment_len >= 3;
        let a = shrink_case(9, &GenConfig::default(), f);
        let b = shrink_case(9, &GenConfig::default(), f);
        assert_eq!(a, b);
    }
}
