//! On-disk corpus of failing fuzz cases.
//!
//! Every failure `dide verify` finds is persisted as a small `.case` file
//! — seed, generator configuration (already shrunk), the failure reason,
//! and the shrunk program listing as comments — and the whole corpus is
//! replayed *before* fresh random seeds on every subsequent run, so a
//! once-found bug stays found until it is actually fixed.
//!
//! The format is line-oriented `key = value` with `#` comments:
//!
//! ```text
//! # reason: seq 12 (inst 4: sd t0, 8(g5)): analysis says ...
//! seed = 0x000000000000002a
//! segments = 2
//! segment_len = 4
//! loop_iters = 1
//! memory_slots = 4
//! ```

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use dide_workloads::GenConfig;

/// One persisted failing case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusCase {
    /// Generator seed.
    pub seed: u64,
    /// (Shrunk) generator configuration.
    pub config: GenConfig,
    /// First failure message recorded when the case was saved.
    pub reason: String,
}

/// The file name a case is stored under.
#[must_use]
pub fn case_filename(seed: u64) -> String {
    format!("seed-{seed:016x}.case")
}

/// Renders a case to its file format. `listing` (typically the shrunk
/// program's disassembly) is embedded as trailing comment lines for human
/// readers; the parser ignores it.
#[must_use]
pub fn render_case(case: &CorpusCase, listing: &str) -> String {
    let mut s = String::new();
    for line in case.reason.lines() {
        s.push_str("# reason: ");
        s.push_str(line);
        s.push('\n');
    }
    s.push_str(&format!("seed = {:#018x}\n", case.seed));
    s.push_str(&format!("segments = {}\n", case.config.segments));
    s.push_str(&format!("segment_len = {}\n", case.config.segment_len));
    s.push_str(&format!("loop_iters = {}\n", case.config.loop_iters));
    s.push_str(&format!("memory_slots = {}\n", case.config.memory_slots));
    if !listing.is_empty() {
        s.push_str("#\n# shrunk program:\n");
        for line in listing.lines() {
            s.push_str("#   ");
            s.push_str(line);
            s.push('\n');
        }
    }
    s
}

/// Saves a failing case (creating `dir` if needed) and returns its path.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save_case(dir: &Path, case: &CorpusCase, listing: &str) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(case_filename(case.seed));
    fs::write(&path, render_case(case, listing))?;
    Ok(path)
}

/// Parses one `.case` file.
///
/// # Errors
///
/// Returns `InvalidData` on malformed or incomplete files, so a corrupted
/// corpus fails loudly instead of silently dropping cases.
pub fn parse_case(text: &str) -> io::Result<CorpusCase> {
    let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    let mut seed = None;
    let mut config = GenConfig::default();
    let mut reason = String::new();
    let mut saw = [false; 4];
    for raw in text.lines() {
        let line = raw.trim();
        if let Some(rest) = line.strip_prefix("# reason:") {
            if !reason.is_empty() {
                reason.push('\n');
            }
            reason.push_str(rest.trim());
            continue;
        }
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| bad(format!("expected `key = value`, got {line:?}")))?;
        let (key, value) = (key.trim(), value.trim());
        let parse_num = |v: &str| -> io::Result<u64> {
            let r = match v.strip_prefix("0x") {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => v.parse(),
            };
            r.map_err(|e| bad(format!("bad number {v:?} for {key}: {e}")))
        };
        match key {
            "seed" => seed = Some(parse_num(value)?),
            "segments" => {
                config.segments = parse_num(value)? as usize;
                saw[0] = true;
            }
            "segment_len" => {
                config.segment_len = parse_num(value)? as usize;
                saw[1] = true;
            }
            "loop_iters" => {
                config.loop_iters = parse_num(value)? as u32;
                saw[2] = true;
            }
            "memory_slots" => {
                config.memory_slots = parse_num(value)? as usize;
                saw[3] = true;
            }
            _ => return Err(bad(format!("unknown key {key:?}"))),
        }
    }
    let seed = seed.ok_or_else(|| bad("missing seed".into()))?;
    if !saw.iter().all(|&s| s) {
        return Err(bad("missing one of segments/segment_len/loop_iters/memory_slots".into()));
    }
    Ok(CorpusCase { seed, config, reason })
}

/// Loads every `.case` file in `dir`, sorted by file name so replay order
/// (and therefore output) is deterministic. A missing directory is an
/// empty corpus, not an error.
///
/// # Errors
///
/// Propagates filesystem errors and malformed case files.
pub fn load_corpus(dir: &Path) -> io::Result<Vec<CorpusCase>> {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut paths: Vec<PathBuf> = entries
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "case"))
        .collect();
    paths.sort();
    paths
        .iter()
        .map(|p| {
            parse_case(&fs::read_to_string(p)?)
                .map_err(|e| io::Error::new(e.kind(), format!("{}: {e}", p.display())))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dide-corpus-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trips_through_disk() {
        let dir = temp_dir("roundtrip");
        let case = CorpusCase {
            seed: 0x2a,
            config: GenConfig { segments: 2, segment_len: 4, loop_iters: 1, memory_slots: 4 },
            reason: "seq 12: analysis says Useful, reference says Dead(RegUnread)".into(),
        };
        let path = save_case(&dir, &case, "li t0, 5\nout t0\nhalt").unwrap();
        assert_eq!(path.file_name().unwrap().to_str().unwrap(), case_filename(0x2a));
        let loaded = load_corpus(&dir).unwrap();
        assert_eq!(loaded, vec![case]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corpus_order_is_sorted_by_seed_filename() {
        let dir = temp_dir("order");
        for seed in [9u64, 1, 5] {
            let case = CorpusCase { seed, config: GenConfig::default(), reason: String::new() };
            save_case(&dir, &case, "").unwrap();
        }
        let seeds: Vec<u64> = load_corpus(&dir).unwrap().iter().map(|c| c.seed).collect();
        assert_eq!(seeds, vec![1, 5, 9]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_directory_is_an_empty_corpus() {
        let dir = temp_dir("missing");
        assert!(load_corpus(&dir).unwrap().is_empty());
    }

    #[test]
    fn malformed_files_fail_loudly() {
        assert!(parse_case("segments = 1").is_err(), "missing seed");
        assert!(parse_case("seed = 1\nsegments = bogus").is_err(), "bad number");
        assert!(parse_case("seed = 1\nwhat = 2").is_err(), "unknown key");
        assert!(parse_case("seed = 1\nno equals here").is_err(), "not key = value");
    }

    #[test]
    fn listing_and_reason_survive_as_comments() {
        let case = CorpusCase {
            seed: 7,
            config: GenConfig::default(),
            reason: "line one\nline two".into(),
        };
        let text = render_case(&case, "halt");
        assert!(text.contains("# reason: line one"));
        assert!(text.contains("# reason: line two"));
        assert!(text.contains("#   halt"));
        let parsed = parse_case(&text).unwrap();
        assert_eq!(parsed.reason, "line one\nline two");
    }
}
