//! Golden-snapshot comparison for rendered experiment tables.
//!
//! The experiment tables are deterministic functions of the committed
//! code; a byte changed in any of them is either an intended result change
//! (re-bless) or a regression (fix it). This module only diffs and writes
//! text — rendering the tables is the caller's job, which keeps the crate
//! free of a dependency on the experiment runner.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One experiment whose rendered table disagrees with its snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoldenMismatch {
    /// Experiment id (e.g. `e7`).
    pub id: String,
    /// What went wrong, including the first differing line.
    pub message: String,
}

/// The snapshot file for a document id. Experiment ids (`e7`) get a `.txt`
/// extension; ids that already carry one (`stats_expr.json`) are used
/// verbatim.
#[must_use]
pub fn golden_path(dir: &Path, id: &str) -> PathBuf {
    if Path::new(id).extension().is_some() {
        dir.join(id)
    } else {
        dir.join(format!("{id}.txt"))
    }
}

/// Compares rendered tables against the snapshots in `dir`, returning one
/// mismatch per experiment that is missing or differs. Comparison is
/// byte-exact; the report pinpoints the first differing line.
///
/// # Errors
///
/// Propagates filesystem errors other than a missing snapshot (which is
/// reported as a mismatch, with a hint to run `--bless`).
pub fn compare_golden(
    dir: &Path,
    rendered: &[(String, String)],
) -> io::Result<Vec<GoldenMismatch>> {
    let mut mismatches = Vec::new();
    for (id, text) in rendered {
        let path = golden_path(dir, id);
        let expected = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                mismatches.push(GoldenMismatch {
                    id: id.clone(),
                    message: format!(
                        "no snapshot at {} (run `dide verify --golden --bless` to create it)",
                        path.display()
                    ),
                });
                continue;
            }
            Err(e) => return Err(e),
        };
        if expected != *text {
            mismatches
                .push(GoldenMismatch { id: id.clone(), message: first_diff(&expected, text) });
        }
    }
    Ok(mismatches)
}

/// Writes (or rewrites) the snapshots for the rendered tables, creating
/// `dir` if needed.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn bless_golden(dir: &Path, rendered: &[(String, String)]) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    for (id, text) in rendered {
        fs::write(golden_path(dir, id), text)?;
    }
    Ok(())
}

/// Describes the first line where two renderings diverge.
fn first_diff(expected: &str, actual: &str) -> String {
    let mut e = expected.lines();
    let mut a = actual.lines();
    let mut line_no = 1usize;
    loop {
        match (e.next(), a.next()) {
            (Some(el), Some(al)) if el == al => line_no += 1,
            (Some(el), Some(al)) => {
                return format!("line {line_no} differs:\n  snapshot: {el}\n  actual:   {al}");
            }
            (Some(el), None) => {
                return format!("actual output ends early; snapshot line {line_no}: {el}");
            }
            (None, Some(al)) => {
                return format!("actual output has extra line {line_no}: {al}");
            }
            (None, None) => {
                // Same lines but different bytes (e.g. trailing newline).
                return "line endings or trailing whitespace differ".into();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dide-golden-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn tables() -> Vec<(String, String)> {
        vec![
            ("e1".to_string(), "E1\nrow a\nrow b\n".to_string()),
            ("e2".to_string(), "E2\nrow c\n".to_string()),
        ]
    }

    #[test]
    fn ids_with_extensions_keep_them() {
        let dir = Path::new("tests/golden");
        assert_eq!(golden_path(dir, "e7"), dir.join("e7.txt"));
        assert_eq!(golden_path(dir, "stats_expr.json"), dir.join("stats_expr.json"));
    }

    #[test]
    fn bless_then_compare_is_clean() {
        let dir = temp_dir("clean");
        bless_golden(&dir, &tables()).unwrap();
        assert!(compare_golden(&dir, &tables()).unwrap().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn a_perturbed_table_is_caught_with_line_info() {
        let dir = temp_dir("perturbed");
        bless_golden(&dir, &tables()).unwrap();
        let mut t = tables();
        t[1].1 = "E2\nrow C\n".to_string();
        let m = compare_golden(&dir, &t).unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].id, "e2");
        assert!(m[0].message.contains("line 2"), "{}", m[0].message);
        assert!(m[0].message.contains("row c"));
        assert!(m[0].message.contains("row C"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn a_perturbed_snapshot_is_caught_too() {
        // The CI direction: someone edits the committed snapshot.
        let dir = temp_dir("tampered");
        bless_golden(&dir, &tables()).unwrap();
        fs::write(golden_path(&dir, "e1"), "E1\nrow a\nrow b\nextra\n").unwrap();
        let m = compare_golden(&dir, &tables()).unwrap();
        assert_eq!(m.len(), 1);
        assert!(m[0].message.contains("ends early"), "{}", m[0].message);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_snapshot_suggests_bless() {
        let dir = temp_dir("unblessed");
        let m = compare_golden(&dir, &tables()).unwrap();
        assert_eq!(m.len(), 2);
        assert!(m[0].message.contains("--bless"));
    }

    #[test]
    fn trailing_newline_difference_is_detected() {
        let dir = temp_dir("trailing");
        bless_golden(&dir, &tables()).unwrap();
        let mut t = tables();
        t[0].1 = "E1\nrow a\nrow b".to_string();
        let m = compare_golden(&dir, &t).unwrap();
        assert_eq!(m.len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }
}
