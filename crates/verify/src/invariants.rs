//! Metamorphic whole-stack invariants.
//!
//! Each check states a law the stack must obey on *every* trace — not an
//! expected value for one input, but a relation between runs (remove the
//! dead set and outputs survive; add elimination and port traffic is
//! conserved; raise the confidence threshold and predictions shrink).
//! Violations come back as human-readable strings so the fuzz driver can
//! persist them alongside the failing seed.

use dide_analysis::{replay_outputs, verify_dead_removable, DeadnessAnalysis};
use dide_emu::Trace;
use dide_pipeline::{Core, DeadElimConfig, PipelineConfig, PipelineStats};
use dide_predictor::branch::Gshare;
use dide_predictor::dead::{evaluate, CfiConfig, CfiDeadPredictor};

use crate::oracle::ReferenceOracle;

/// Runs every metamorphic invariant over one trace and returns one message
/// per violated law. Empty means the whole stack is consistent on this
/// trace.
#[must_use]
pub fn check_invariants(trace: &Trace, analysis: &DeadnessAnalysis) -> Vec<String> {
    let mut violations = Vec::new();
    check_replay(trace, analysis, &mut violations);
    check_pipeline(trace, analysis, &mut violations);
    check_threshold_monotonicity(trace, analysis, &mut violations);
    violations
}

/// Removal invariants: replaying the committed path with no skips is
/// faithful, and skipping either oracle's dead set preserves outputs.
fn check_replay(trace: &Trace, analysis: &DeadnessAnalysis, violations: &mut Vec<String>) {
    let faithful = replay_outputs(trace, |_| false);
    if faithful != trace.outputs() {
        violations.push(format!(
            "full replay diverged from the emulator: expected {:?}, got {:?}",
            trace.outputs(),
            faithful
        ));
    }
    if let Err(m) = verify_dead_removable(trace, analysis) {
        violations.push(format!("analysis dead set is not removable: {m}"));
    }
    let reference = ReferenceOracle::analyze(trace);
    let ref_removed = replay_outputs(trace, |seq| reference.is_dead(seq));
    if ref_removed != trace.outputs() {
        violations.push(format!(
            "reference-oracle dead set is not removable: expected {:?}, got {:?}",
            trace.outputs(),
            ref_removed
        ));
    }
}

/// Pipeline invariants: per-run conservation laws plus exact cross-run
/// laws between a baseline run and elimination runs on the same trace.
fn check_pipeline(trace: &Trace, analysis: &DeadnessAnalysis, violations: &mut Vec<String>) {
    let base = run_pipeline(trace, analysis, PipelineConfig::baseline(), "baseline", violations);
    let cfi_cfg = PipelineConfig::baseline().with_elimination(DeadElimConfig::default());
    let cfi = run_pipeline(trace, analysis, cfi_cfg, "cfi-elim", violations);
    let oracle_cfg = PipelineConfig::baseline()
        .with_elimination(DeadElimConfig { oracle: true, ..DeadElimConfig::default() });
    let oracle = run_pipeline(trace, analysis, oracle_cfg, "oracle-elim", violations);

    // Every eliminated write/read/access in an elimination run must show up
    // as a saving, and nothing else may change: port traffic is conserved
    // exactly between runs on the same committed path.
    for (name, elim) in [("cfi-elim", &cfi), ("oracle-elim", &oracle)] {
        let mut law = |ok: bool, msg: String| {
            if !ok {
                violations.push(format!("{name}: {msg}"));
            }
        };
        law(
            elim.rf_writes + elim.savings.rf_writes_saved == base.rf_writes,
            format!(
                "rf_writes ({}) + saved ({}) != baseline rf_writes ({})",
                elim.rf_writes, elim.savings.rf_writes_saved, base.rf_writes
            ),
        );
        law(
            elim.rf_reads + elim.savings.rf_reads_saved == base.rf_reads,
            format!(
                "rf_reads ({}) + saved ({}) != baseline rf_reads ({})",
                elim.rf_reads, elim.savings.rf_reads_saved, base.rf_reads
            ),
        );
        law(
            elim.memory.l1d.accesses + elim.savings.dcache_accesses_saved
                == base.memory.l1d.accesses,
            format!(
                "l1d accesses ({}) + saved ({}) != baseline l1d accesses ({})",
                elim.memory.l1d.accesses,
                elim.savings.dcache_accesses_saved,
                base.memory.l1d.accesses
            ),
        );
        // Allocations are only bounded: each dead-tag violation recovery
        // allocates a register the baseline never needed.
        let recovered = elim.phys_allocs + elim.savings.phys_allocs_saved;
        law(
            base.phys_allocs <= recovered && recovered <= base.phys_allocs + elim.dead_violations,
            format!(
                "phys_allocs ({}) + saved ({}) outside [baseline ({}), baseline + violations \
                 ({})]",
                elim.phys_allocs,
                elim.savings.phys_allocs_saved,
                base.phys_allocs,
                base.phys_allocs + elim.dead_violations
            ),
        );
    }

    // The oracle predictor eliminates exactly the committed oracle-dead
    // set, and no real predictor can correctly eliminate more than that.
    if oracle.dead_predicted != oracle.oracle_dead_committed {
        violations.push(format!(
            "oracle-elim: dead_predicted ({}) != oracle_dead_committed ({})",
            oracle.dead_predicted, oracle.oracle_dead_committed
        ));
    }
    if oracle.dead_predicted_correct != oracle.dead_predicted {
        violations.push(format!(
            "oracle-elim: dead_predicted_correct ({}) != dead_predicted ({})",
            oracle.dead_predicted_correct, oracle.dead_predicted
        ));
    }
    if cfi.dead_predicted_correct > oracle.dead_predicted {
        violations.push(format!(
            "cfi-elim eliminated more true-dead instructions ({}) than the oracle limit ({})",
            cfi.dead_predicted_correct, oracle.dead_predicted
        ));
    }
}

fn run_pipeline(
    trace: &Trace,
    analysis: &DeadnessAnalysis,
    config: PipelineConfig,
    name: &str,
    violations: &mut Vec<String>,
) -> PipelineStats {
    let stats = Core::new(config).run(trace, analysis);
    if stats.committed != trace.len() as u64 {
        violations.push(format!(
            "{name}: committed {} of {} instructions",
            stats.committed,
            trace.len()
        ));
    }
    for law in stats.invariant_violations() {
        violations.push(format!("{name}: {law}"));
    }
    stats
}

/// Exact threshold monotonicity of the offline evaluation: the CFI
/// predictor's training is prediction-independent and prediction is
/// side-effect-free, so its counters evolve identically for every
/// threshold — raising the threshold can only shrink the predicted-dead
/// set. (This is *not* asserted at the pipeline level, where elimination
/// feeds back into timing and training order.)
fn check_threshold_monotonicity(
    trace: &Trace,
    analysis: &DeadnessAnalysis,
    violations: &mut Vec<String>,
) {
    let run = |threshold: u8| {
        let mut p = CfiDeadPredictor::new(CfiConfig { threshold, ..CfiConfig::default() });
        let mut g = Gshare::new(10, 12);
        evaluate(trace, analysis, &mut p, &mut g, 4)
    };
    let reports: Vec<_> = [1u8, 8, 15].iter().map(|&t| (t, run(t))).collect();
    for pair in reports.windows(2) {
        let (lo_t, lo) = &pair[0];
        let (hi_t, hi) = &pair[1];
        if hi.predicted_dead > lo.predicted_dead {
            violations.push(format!(
                "threshold {hi_t} predicts more dead ({}) than threshold {lo_t} ({})",
                hi.predicted_dead, lo.predicted_dead
            ));
        }
        if hi.true_positives > lo.true_positives {
            violations.push(format!(
                "threshold {hi_t} has more true positives ({}) than threshold {lo_t} ({})",
                hi.true_positives, lo.true_positives
            ));
        }
        if hi.eligible != lo.eligible || hi.actual_dead != lo.actual_dead {
            violations.push(format!(
                "eligible/actual_dead changed between thresholds {lo_t} and {hi_t}: \
                 {}/{} vs {}/{}",
                lo.eligible, lo.actual_dead, hi.eligible, hi.actual_dead
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dide_emu::Emulator;
    use dide_isa::{ProgramBuilder, Reg};
    use dide_workloads::{random_program, GenConfig};

    #[test]
    fn loop_with_partial_deadness_is_clean() {
        let mut b = ProgramBuilder::new("t");
        b.li(Reg::T0, 0);
        b.li(Reg::T1, 100);
        let top = b.label();
        b.bind(top);
        b.slt(Reg::T2, Reg::T0, Reg::T1);
        b.addi(Reg::T0, Reg::T0, 1);
        b.blt(Reg::T0, Reg::T1, top);
        b.out(Reg::T2);
        b.halt();
        let t = Emulator::new(&b.build().unwrap()).run().unwrap();
        let analysis = DeadnessAnalysis::analyze(&t);
        let v = check_invariants(&t, &analysis);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn random_workloads_are_clean() {
        for seed in [0u64, 17, 42] {
            let t = Emulator::new(&random_program(seed, &GenConfig::default())).run().unwrap();
            let analysis = DeadnessAnalysis::analyze(&t);
            let v = check_invariants(&t, &analysis);
            assert!(v.is_empty(), "seed {seed}: {v:?}");
        }
    }
}
