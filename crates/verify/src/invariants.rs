//! Metamorphic whole-stack invariants.
//!
//! Each check states a law the stack must obey on *every* trace — not an
//! expected value for one input, but a relation between runs (remove the
//! dead set and outputs survive; add elimination and port traffic is
//! conserved; raise the confidence threshold and predictions shrink).
//! Violations come back as human-readable strings so the fuzz driver can
//! persist them alongside the failing seed.

use dide_analysis::{replay_outputs, verify_dead_removable, DeadnessAnalysis};
use dide_emu::Trace;
use dide_obs::{check_rules, CounterSet, Expr, Observe, Rule};
use dide_pipeline::{
    ClusterConfig, Core, DeadElimConfig, PipelineConfig, PipelineStats, SteerPolicy, SteerStats,
};
use dide_predictor::branch::Gshare;
use dide_predictor::dead::{evaluate, CfiConfig, CfiDeadPredictor};

use crate::oracle::ReferenceOracle;

/// Runs every metamorphic invariant over one trace and returns one message
/// per violated law. Empty means the whole stack is consistent on this
/// trace.
#[must_use]
pub fn check_invariants(trace: &Trace, analysis: &DeadnessAnalysis) -> Vec<String> {
    let mut violations = Vec::new();
    check_replay(trace, analysis, &mut violations);
    check_pipeline(trace, analysis, &mut violations);
    check_clustered(trace, analysis, &mut violations);
    check_threshold_monotonicity(trace, analysis, &mut violations);
    violations
}

/// Removal invariants: replaying the committed path with no skips is
/// faithful, and skipping either oracle's dead set preserves outputs.
fn check_replay(trace: &Trace, analysis: &DeadnessAnalysis, violations: &mut Vec<String>) {
    let faithful = replay_outputs(trace, |_| false);
    if faithful != trace.outputs() {
        violations.push(format!(
            "full replay diverged from the emulator: expected {:?}, got {:?}",
            trace.outputs(),
            faithful
        ));
    }
    if let Err(m) = verify_dead_removable(trace, analysis) {
        violations.push(format!("analysis dead set is not removable: {m}"));
    }
    let reference = ReferenceOracle::analyze(trace);
    let ref_removed = replay_outputs(trace, |seq| reference.is_dead(seq));
    if ref_removed != trace.outputs() {
        violations.push(format!(
            "reference-oracle dead set is not removable: expected {:?}, got {:?}",
            trace.outputs(),
            ref_removed
        ));
    }
}

/// Pipeline invariants: per-run conservation laws plus exact cross-run
/// laws between a baseline run and elimination runs on the same trace —
/// all expressed as registry rules over one prefixed [`CounterSet`]
/// (`base.pipeline.*`, `cfi.pipeline.*`, `oracle.pipeline.*`).
fn check_pipeline(trace: &Trace, analysis: &DeadnessAnalysis, violations: &mut Vec<String>) {
    let base = run_pipeline(trace, analysis, PipelineConfig::baseline(), "base", violations);
    let cfi_cfg = PipelineConfig::baseline().with_elimination(DeadElimConfig::default());
    let cfi = run_pipeline(trace, analysis, cfi_cfg, "cfi", violations);
    let oracle_cfg = PipelineConfig::baseline()
        .with_elimination(DeadElimConfig { oracle: true, ..DeadElimConfig::default() });
    let oracle = run_pipeline(trace, analysis, oracle_cfg, "oracle", violations);

    let mut set = CounterSet::new();
    base.observe(&mut set.scope("base.pipeline"));
    cfi.observe(&mut set.scope("cfi.pipeline"));
    oracle.observe(&mut set.scope("oracle.pipeline"));

    let mut rules: Vec<Rule> = Vec::new();
    // Per-run conservation laws, retargeted into each run's namespace.
    for run in ["base", "cfi", "oracle"] {
        rules.extend(PipelineStats::conservation_rules().iter().map(|r| r.prefixed(run)));
    }
    // Cross-run conservation between the baseline and each elimination run.
    for run in ["cfi", "oracle"] {
        rules.extend(cross_run_rules("base", run));
    }
    rules.extend(oracle_exactness_rules("oracle", "cfi"));
    violations.extend(check_rules(&rules, &set));
}

/// Clustered-backend invariants (DESIGN.md §11), on the contended machine
/// the `clustered` axis builds on:
///
/// * every steering policy commits exactly the baseline's architectural
///   results (same committed/dispatched counts) with clean per-run laws,
///   including the cluster conservation rules;
/// * the degenerate machine (one cluster, zero bypass penalty) reproduces
///   the unified contended run's statistics field for field;
/// * the oracle eliminator's savings are identical clustered or not — the
///   oracle's verdicts depend only on the trace, so partitioning the
///   backend may move cycles but never savings — and the cross-run
///   conservation laws hold *within* the clustered family.
fn check_clustered(trace: &Trace, analysis: &DeadnessAnalysis, violations: &mut Vec<String>) {
    let contended = PipelineConfig::contended();
    let base = run_pipeline(trace, analysis, contended, "contended", violations);
    let cluster = ClusterConfig::default(); // 2 clusters, bypass penalty 2
    for steer in [SteerPolicy::RoundRobin, SteerPolicy::DependenceAffinity, SteerPolicy::DeadSteer]
    {
        let name = format!("clustered-{}", steer.label());
        let cfg = contended.with_cluster(ClusterConfig { steer, ..cluster });
        let stats = run_pipeline(trace, analysis, cfg, &name, violations);
        if stats.dispatched != base.dispatched {
            violations.push(format!(
                "{name}: dispatched {} where the unified machine dispatched {}",
                stats.dispatched, base.dispatched
            ));
        }
        violations.extend(stats.invariant_violations().into_iter().map(|v| format!("{name}: {v}")));
    }

    let degenerate =
        contended.with_cluster(ClusterConfig { clusters: 1, bypass_penalty: 0, ..cluster });
    let mut degen = run_pipeline(trace, analysis, degenerate, "clustered-degenerate", violations);
    degen.clusters.clear();
    degen.steer = SteerStats::default();
    if degen != base {
        violations.push(format!(
            "one cluster at penalty 0 must equal the unified machine: \
             cycles {} vs {}, dispatched {} vs {}",
            degen.cycles, base.cycles, degen.dispatched, base.dispatched
        ));
    }

    let elim = DeadElimConfig { oracle: true, ..DeadElimConfig::default() };
    let unified_elim =
        run_pipeline(trace, analysis, contended.with_elimination(elim), "oracle-elim", violations);
    let clustered_cfg = contended
        .with_elimination(elim)
        .with_cluster(ClusterConfig { steer: SteerPolicy::DeadSteer, ..cluster });
    let clustered_elim =
        run_pipeline(trace, analysis, clustered_cfg, "clustered-oracle-elim", violations);
    if clustered_elim.savings != unified_elim.savings
        || clustered_elim.dead_predicted != unified_elim.dead_predicted
        || clustered_elim.dead_violations != unified_elim.dead_violations
    {
        violations.push(format!(
            "oracle elimination savings must not depend on clustering: \
             {:?} dead {} violations {} vs {:?} dead {} violations {}",
            clustered_elim.savings,
            clustered_elim.dead_predicted,
            clustered_elim.dead_violations,
            unified_elim.savings,
            unified_elim.dead_predicted,
            unified_elim.dead_violations,
        ));
    }
    let clustered_base = Core::new(contended.with_cluster(cluster)).run(trace, analysis);
    violations.extend(
        cross_run_violations(&clustered_base, &clustered_elim)
            .into_iter()
            .map(|v| format!("clustered family: {v}")),
    );
}

/// The exact cross-run conservation laws between a baseline run
/// (registered under `<base>.pipeline.*`) and an elimination run
/// (under `<elim>.pipeline.*`) on the same committed path: every
/// eliminated write/read/access must show up as a saving, and nothing
/// else may change.
#[must_use]
pub fn cross_run_rules(base: &str, elim: &str) -> Vec<Rule> {
    let b = |n: &str| Expr::counter(format!("{base}.pipeline.{n}"));
    let e = |n: &str| format!("{elim}.pipeline.{n}");
    let conserved = |resource: &str, saved: &str| {
        Rule::eq(Expr::sum([e(resource), e(saved)]), b(resource))
            .note("port traffic is conserved exactly between runs on one committed path")
    };
    vec![
        conserved("rf_writes", "savings.rf_writes_saved"),
        conserved("rf_reads", "savings.rf_reads_saved"),
        conserved("mem.l1d.accesses", "savings.dcache_accesses_saved"),
        // Allocations are only bounded: each dead-tag violation recovery
        // allocates a register the baseline never needed.
        Rule::le(b("phys_allocs"), Expr::sum([e("phys_allocs"), e("savings.phys_allocs_saved")]))
            .note("elimination cannot allocate fewer registers than it saves"),
        Rule::le(
            Expr::sum([e("phys_allocs"), e("savings.phys_allocs_saved")]),
            Expr::sum([format!("{base}.pipeline.phys_allocs"), e("dead_violations")]),
        )
        .note("each recovery allocates at most one extra register"),
    ]
}

/// Oracle-exactness laws: the oracle predictor eliminates exactly the
/// committed oracle-dead set, and no real predictor can correctly
/// eliminate more than that.
fn oracle_exactness_rules(oracle: &str, cfi: &str) -> Vec<Rule> {
    let o = |n: &str| Expr::counter(format!("{oracle}.pipeline.{n}"));
    vec![
        Rule::eq(o("dead_predicted"), o("oracle_dead_committed"))
            .note("the oracle eliminates exactly the committed oracle-dead set"),
        Rule::eq(o("dead_predicted_correct"), o("dead_predicted"))
            .note("the oracle is never wrong"),
        Rule::le(
            Expr::counter(format!("{cfi}.pipeline.dead_predicted_correct")),
            o("dead_predicted"),
        )
        .note("no real predictor correctly eliminates more than the oracle"),
    ]
}

/// Checks the cross-run conservation laws between one baseline run and one
/// elimination run on the same trace, through the counter registry. The
/// returned messages use the `base.pipeline.*` / `elim.pipeline.*`
/// namespaces.
#[must_use]
pub fn cross_run_violations(base: &PipelineStats, elim: &PipelineStats) -> Vec<String> {
    let mut set = CounterSet::new();
    base.observe(&mut set.scope("base.pipeline"));
    elim.observe(&mut set.scope("elim.pipeline"));
    check_rules(&cross_run_rules("base", "elim"), &set)
}

fn run_pipeline(
    trace: &Trace,
    analysis: &DeadnessAnalysis,
    config: PipelineConfig,
    name: &str,
    violations: &mut Vec<String>,
) -> PipelineStats {
    let stats = Core::new(config).run(trace, analysis);
    if stats.committed != trace.len() as u64 {
        violations.push(format!(
            "{name}: committed {} of {} instructions",
            stats.committed,
            trace.len()
        ));
    }
    stats
}

/// Exact threshold monotonicity of the offline evaluation: the CFI
/// predictor's training is prediction-independent and prediction is
/// side-effect-free, so its counters evolve identically for every
/// threshold — raising the threshold can only shrink the predicted-dead
/// set. (This is *not* asserted at the pipeline level, where elimination
/// feeds back into timing and training order.)
fn check_threshold_monotonicity(
    trace: &Trace,
    analysis: &DeadnessAnalysis,
    violations: &mut Vec<String>,
) {
    let run = |threshold: u8| {
        let mut p = CfiDeadPredictor::new(CfiConfig { threshold, ..CfiConfig::default() });
        let mut g = Gshare::new(10, 12);
        evaluate(trace, analysis, &mut p, &mut g, 4)
    };
    let reports: Vec<_> = [1u8, 8, 15].iter().map(|&t| (t, run(t))).collect();
    for pair in reports.windows(2) {
        let (lo_t, lo) = &pair[0];
        let (hi_t, hi) = &pair[1];
        if hi.predicted_dead > lo.predicted_dead {
            violations.push(format!(
                "threshold {hi_t} predicts more dead ({}) than threshold {lo_t} ({})",
                hi.predicted_dead, lo.predicted_dead
            ));
        }
        if hi.true_positives > lo.true_positives {
            violations.push(format!(
                "threshold {hi_t} has more true positives ({}) than threshold {lo_t} ({})",
                hi.true_positives, lo.true_positives
            ));
        }
        if hi.eligible != lo.eligible || hi.actual_dead != lo.actual_dead {
            violations.push(format!(
                "eligible/actual_dead changed between thresholds {lo_t} and {hi_t}: \
                 {}/{} vs {}/{}",
                lo.eligible, lo.actual_dead, hi.eligible, hi.actual_dead
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dide_emu::Emulator;
    use dide_isa::{ProgramBuilder, Reg};
    use dide_workloads::{random_program, GenConfig};

    #[test]
    fn loop_with_partial_deadness_is_clean() {
        let mut b = ProgramBuilder::new("t");
        b.li(Reg::T0, 0);
        b.li(Reg::T1, 100);
        let top = b.label();
        b.bind(top);
        b.slt(Reg::T2, Reg::T0, Reg::T1);
        b.addi(Reg::T0, Reg::T0, 1);
        b.blt(Reg::T0, Reg::T1, top);
        b.out(Reg::T2);
        b.halt();
        let t = Emulator::new(&b.build().unwrap()).run().unwrap();
        let analysis = DeadnessAnalysis::analyze(&t);
        let v = check_invariants(&t, &analysis);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn cross_run_violations_catch_unconserved_savings() {
        let mut b = ProgramBuilder::new("t");
        b.li(Reg::T0, 0);
        b.li(Reg::T1, 64);
        let top = b.label();
        b.bind(top);
        b.slt(Reg::T2, Reg::T0, Reg::T1);
        b.addi(Reg::T0, Reg::T0, 1);
        b.blt(Reg::T0, Reg::T1, top);
        b.out(Reg::T2);
        b.halt();
        let t = Emulator::new(&b.build().unwrap()).run().unwrap();
        let analysis = DeadnessAnalysis::analyze(&t);
        let base = Core::new(PipelineConfig::baseline()).run(&t, &analysis);
        let elim_cfg = PipelineConfig::baseline().with_elimination(DeadElimConfig::default());
        let mut elim = Core::new(elim_cfg).run(&t, &analysis);
        assert!(cross_run_violations(&base, &elim).is_empty());
        // Drop one saved write: the conservation rule pinpoints it.
        elim.savings.rf_writes_saved -= 1;
        let v = cross_run_violations(&base, &elim);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("rf_writes"), "{}", v[0]);
        assert!(v[0].contains("conserved"), "{}", v[0]);
    }

    #[test]
    fn random_workloads_are_clean() {
        for seed in [0u64, 17, 42] {
            let t = Emulator::new(&random_program(seed, &GenConfig::default())).run().unwrap();
            let analysis = DeadnessAnalysis::analyze(&t);
            let v = check_invariants(&t, &analysis);
            assert!(v.is_empty(), "seed {seed}: {v:?}");
        }
    }
}
