//! Determinism checking for campaign result stores.
//!
//! The campaign engine's central promise is that a JSONL result store is a
//! pure function of the job grid: the same grid must produce identical
//! store contents whether it ran on 1 worker or 8, and whether it ran
//! uninterrupted or was killed and resumed. This module states that check
//! independently of the engine (it never parses records — canonical
//! equality over lines is exactly the guarantee the store makes), so the
//! integration tests and CI compare stores through one audited code path.
//!
//! Canonical form: the header line (line 1) stays first, the record lines
//! are sorted lexicographically. The engine writes records in
//! sequence-stamped order, so a well-behaved store is *already* canonical;
//! sorting makes the check additionally robust to any future
//! completion-order writer.

/// The canonical form of a store's contents: header first, record lines
/// sorted lexicographically, trailing partial line (no `\n`) dropped —
/// a torn tail is exactly what a crash leaves and what resume truncates.
#[must_use]
pub fn canonical_store_lines(contents: &str) -> Vec<String> {
    let complete = match contents.rfind('\n') {
        Some(end) => &contents[..=end],
        None => "",
    };
    let mut lines = complete.lines().map(str::to_string);
    let mut out: Vec<String> = Vec::new();
    if let Some(header) = lines.next() {
        out.push(header);
    }
    let mut records: Vec<String> = lines.collect();
    records.sort_unstable();
    out.extend(records);
    out
}

/// Compares two stores in canonical form, returning a one-line description
/// of the first difference (`None` = identical).
#[must_use]
pub fn diff_stores(label_a: &str, a: &str, label_b: &str, b: &str) -> Option<String> {
    let ca = canonical_store_lines(a);
    let cb = canonical_store_lines(b);
    if ca.len() != cb.len() {
        return Some(format!(
            "store {label_a} has {} line(s), {label_b} has {} (canonical form)",
            ca.len(),
            cb.len()
        ));
    }
    for (i, (la, lb)) in ca.iter().zip(&cb).enumerate() {
        if la != lb {
            let what = if i == 0 { "header" } else { "record" };
            return Some(format!(
                "stores {label_a} and {label_b} disagree at canonical {what} line {}: \
                 `{la}` vs `{lb}`",
                i + 1
            ));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const HEADER: &str = "{\"schema\":\"dide-campaign/v1\"}";

    #[test]
    fn canonical_form_keeps_header_first_and_sorts_records() {
        let store = format!("{HEADER}\nzeta\nalpha\n");
        assert_eq!(canonical_store_lines(&store), vec![HEADER, "alpha", "zeta"]);
    }

    #[test]
    fn torn_tail_is_dropped() {
        let store = format!("{HEADER}\nalpha\n{{\"seq\":2,\"trunc");
        assert_eq!(canonical_store_lines(&store), vec![HEADER, "alpha"]);
        assert!(canonical_store_lines("no newline at all").is_empty());
    }

    #[test]
    fn identical_and_reordered_stores_compare_equal() {
        let a = format!("{HEADER}\nalpha\nzeta\n");
        let b = format!("{HEADER}\nzeta\nalpha\n");
        assert_eq!(diff_stores("a", &a, "b", &b), None);
    }

    #[test]
    fn differences_are_located_and_described() {
        let a = format!("{HEADER}\nalpha\n");
        let b = format!("{HEADER}\nbeta\n");
        let msg = diff_stores("jobs1", &a, "jobs8", &b).expect("differs");
        assert!(msg.contains("jobs1") && msg.contains("jobs8"), "{msg}");
        assert!(msg.contains("record"), "{msg}");

        let c = "{\"schema\":\"other\"}\nalpha\n".to_string();
        let msg = diff_stores("a", &a, "c", &c).expect("headers differ");
        assert!(msg.contains("header"), "{msg}");

        let short = format!("{HEADER}\n");
        let msg = diff_stores("a", &a, "s", &short).expect("lengths differ");
        assert!(msg.contains("line(s)"), "{msg}");
    }
}
