//! Differential verification for the DIDE stack.
//!
//! A single `DeadnessAnalysis` implementation is both the measurement and
//! its own referee; this crate adds an independent checking layer:
//!
//! * [`oracle`] — a second liveness oracle, written from scratch with a
//!   different algorithm, whose verdicts must match the production
//!   analysis bit-for-bit;
//! * [`diff`] — the verdict-by-verdict differential comparison;
//! * [`invariants`] — metamorphic whole-stack invariants checked per
//!   seed: removal preserves outputs, pipeline committed state matches
//!   the emulator, conservation laws over pipeline statistics, and
//!   exact threshold monotonicity of the offline predictor evaluation;
//! * [`stream`] — the streamed-vs-exact differential: windowed analysis
//!   soundness across an epoch sweep, single-epoch bit-identity, and
//!   streamed-pipeline equivalence;
//! * [`storecheck`] — canonical-form equality of campaign result stores
//!   (the jobs-1 vs jobs-N vs interrupted+resumed determinism check);
//! * [`seedcheck`] — one seed in, one [`seedcheck::SeedReport`] out: the
//!   unit of work the `dide verify` fuzz driver fans out;
//! * [`shrink`] — minimizes a failing seed's generator config while
//!   preserving the failure;
//! * [`corpus`] — on-disk persistence of failing cases, replayed before
//!   fresh random seeds on every run;
//! * [`golden`] — byte-identical snapshot comparison for rendered
//!   experiment tables.

pub mod corpus;
pub mod diff;
pub mod golden;
pub mod invariants;
pub mod oracle;
pub mod seedcheck;
pub mod shrink;
pub mod storecheck;
pub mod stream;

pub use corpus::{load_corpus, save_case, CorpusCase};
pub use diff::{differential_verdicts, VerdictMismatch};
pub use golden::{bless_golden, compare_golden, golden_path, GoldenMismatch};
pub use invariants::{check_invariants, cross_run_rules, cross_run_violations};
pub use oracle::ReferenceOracle;
pub use seedcheck::{derive_config, verify_seed, verify_seed_with, SeedReport};
pub use shrink::shrink_case;
pub use storecheck::{canonical_store_lines, diff_stores};
pub use stream::check_streaming;
