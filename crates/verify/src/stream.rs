//! Streamed-vs-exact differential layer.
//!
//! The windowed streaming analysis ([`DeadnessAnalysis::analyze_streamed`])
//! and the streaming pipeline pass ([`Core::run_streamed`]) promise three
//! relations against the materializing path, checked here on every fuzz
//! seed across an epoch-length sweep (1-record epochs, a prime that never
//! divides the trace, the production default, and one whole-trace epoch):
//!
//! * **Soundness** — a streamed-dead verdict implies the exact verdict,
//!   with the same [`DeadKind`](dide_analysis::DeadKind); the dead-count
//!   gap is exactly the number of verdicts the window conservatively gave
//!   up, and outputs are identical to the materialized trace's.
//! * **Single-epoch exactness** — with the whole trace in one epoch, the
//!   streamed verdicts, statistics and outputs are bit-identical to the
//!   exact analysis.
//! * **Pipeline equivalence** — with elimination off the verdict vector is
//!   never consulted, so the streamed cycle loop must produce bit-identical
//!   statistics to the materialized one at *every* epoch length; with
//!   oracle elimination the same holds for the single-epoch stream (whose
//!   verdicts equal the exact oracle's).

use dide_analysis::DeadnessAnalysis;
use dide_emu::{Trace, TraceStream};
use dide_isa::Program;
use dide_pipeline::{Core, DeadElimConfig, PipelineConfig};

/// Epoch lengths swept per seed: degenerate (1), a prime small enough to
/// straddle every loop body, and the CLI default. A whole-trace epoch is
/// added dynamically.
const EPOCH_SWEEP: [usize; 3] = [1, 7, 65_536];

/// Runs the streaming differential checks for one program against its
/// materialized trace and exact analysis. Returns one message per violated
/// relation; empty means the streaming paths agree with the materializing
/// ones everywhere the contract says they must.
#[must_use]
pub fn check_streaming(
    program: &Program,
    trace: &Trace,
    analysis: &DeadnessAnalysis,
) -> Vec<String> {
    let mut violations = Vec::new();
    let whole = trace.len().max(1);
    for epoch_len in EPOCH_SWEEP.into_iter().chain([whole]) {
        check_analysis_at(program, trace, analysis, epoch_len, &mut violations);
    }
    check_pipeline_equivalence(program, trace, analysis, &mut violations);
    violations
}

/// Verdict soundness and output equality at one epoch length.
fn check_analysis_at(
    program: &Program,
    trace: &Trace,
    analysis: &DeadnessAnalysis,
    epoch_len: usize,
    violations: &mut Vec<String>,
) {
    let streamed = match DeadnessAnalysis::analyze_streamed(program, epoch_len) {
        Ok(s) => s,
        Err(e) => {
            violations.push(format!("epoch {epoch_len}: streamed analysis failed: {e}"));
            return;
        }
    };
    if streamed.len() != trace.len() {
        violations.push(format!(
            "epoch {epoch_len}: streamed trace length {} != materialized {}",
            streamed.len(),
            trace.len()
        ));
        return;
    }
    if streamed.outputs() != trace.outputs() {
        violations.push(format!(
            "epoch {epoch_len}: streamed outputs {:?} != materialized {:?}",
            streamed.outputs(),
            trace.outputs()
        ));
    }
    let mut dead_gap = 0u64;
    for seq in 0..trace.len() as u64 {
        let s = streamed.verdict(seq);
        let e = analysis.verdict(seq);
        if s.is_eligible() != e.is_eligible() {
            violations.push(format!(
                "epoch {epoch_len}: seq {seq} eligibility diverged (streamed {s:?}, exact {e:?})"
            ));
        }
        if s.is_dead() && s != e {
            violations.push(format!(
                "epoch {epoch_len}: seq {seq} unsound verdict: streamed {s:?}, exact {e:?}"
            ));
        }
        if !s.is_dead() && e.is_dead() {
            dead_gap += 1;
        }
    }
    if streamed.stats().dead_total + dead_gap != analysis.stats().dead_total {
        violations.push(format!(
            "epoch {epoch_len}: dead accounting broken: streamed {} + gap {dead_gap} != exact {}",
            streamed.stats().dead_total,
            analysis.stats().dead_total
        ));
    }
    if epoch_len >= trace.len() {
        // Whole trace in one epoch: bit-identical to the exact pass.
        if streamed.verdicts() != analysis.verdicts() {
            violations.push(format!("epoch {epoch_len}: single-epoch verdicts differ from exact"));
        }
        if streamed.stats() != analysis.stats() {
            violations.push(format!(
                "epoch {epoch_len}: single-epoch stats differ: {:?} vs {:?}",
                streamed.stats(),
                analysis.stats()
            ));
        }
        if streamed.escaped() != 0 {
            violations.push(format!(
                "epoch {epoch_len}: single-epoch run reported {} escapes",
                streamed.escaped()
            ));
        }
    }
}

/// Streamed-vs-materialized cycle-loop equality where the contract demands
/// bit identity.
fn check_pipeline_equivalence(
    program: &Program,
    trace: &Trace,
    analysis: &DeadnessAnalysis,
    violations: &mut Vec<String>,
) {
    let whole = trace.len().max(1);
    // Elimination off: verdicts are never consulted, so every epoch length
    // must reproduce the materialized statistics exactly.
    let base_core = Core::new(PipelineConfig::baseline());
    let base = base_core.run(trace, analysis);
    for epoch_len in [7usize, whole] {
        let Ok(sd) = DeadnessAnalysis::analyze_streamed(program, epoch_len) else {
            return; // already reported by the analysis sweep
        };
        let mut stream = TraceStream::new(program, epoch_len);
        let streamed = base_core.run_streamed(&mut stream, &sd);
        if streamed != base {
            violations.push(format!(
                "epoch {epoch_len}: elimination-off streamed pipeline diverged \
                 ({} vs {} cycles)",
                streamed.cycles, base.cycles
            ));
        }
    }
    // Oracle elimination, single epoch: streamed verdicts equal the exact
    // oracle's, so the streamed run must be bit-identical.
    let oracle_core = Core::new(
        PipelineConfig::baseline()
            .with_elimination(DeadElimConfig { oracle: true, ..DeadElimConfig::default() }),
    );
    let oracle = oracle_core.run(trace, analysis);
    let Ok(sd) = DeadnessAnalysis::analyze_streamed(program, whole) else {
        return;
    };
    let mut stream = TraceStream::new(program, whole);
    let streamed = oracle_core.run_streamed(&mut stream, &sd);
    if streamed != oracle {
        violations.push(format!(
            "single-epoch oracle-elimination streamed pipeline diverged \
             ({} vs {} cycles, {} vs {} eliminated)",
            streamed.cycles, oracle.cycles, streamed.dead_predicted, oracle.dead_predicted
        ));
    }
    // Multi-epoch oracle elimination: verdicts are conservative, not equal,
    // so only the architectural contract holds — everything commits.
    let Ok(sd) = DeadnessAnalysis::analyze_streamed(program, 7) else {
        return;
    };
    let mut stream = TraceStream::new(program, 7);
    let streamed = oracle_core.run_streamed(&mut stream, &sd);
    if streamed.committed != trace.len() as u64 {
        violations.push(format!(
            "epoch 7: oracle-elimination streamed run committed {} of {}",
            streamed.committed,
            trace.len()
        ));
    }
    for v in streamed.invariant_violations() {
        violations.push(format!("epoch 7: oracle-elimination streamed run: {v}"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::ReferenceOracle;
    use dide_analysis::{DeadKind, Verdict};
    use dide_emu::Emulator;
    use dide_isa::{ProgramBuilder, Reg};
    use dide_workloads::{random_program, GenConfig};

    #[test]
    fn random_programs_pass_the_streaming_differential() {
        for seed in [0u64, 9, 23] {
            let p = random_program(seed, &GenConfig::default());
            let t = Emulator::new(&p).run().unwrap();
            let a = DeadnessAnalysis::analyze(&t);
            let v = check_streaming(&p, &t, &a);
            assert!(v.is_empty(), "seed {seed}: {v:?}");
        }
    }

    /// The three epoch-boundary fixtures below pin the conservative-escape
    /// semantics record by record against both exact oracles (the
    /// production analysis and the naive [`ReferenceOracle`]), with the
    /// epoch boundary placed exactly on the interesting edge.

    #[test]
    fn killing_overwrite_across_the_boundary_escapes() {
        // seq 0 writes t0; the killing overwrite (seq 2) lands in the next
        // 2-record epoch. Exact: seq 0 is RegOverwritten-dead. Streamed:
        // seq 0 is still pending at the boundary, escapes, stays Useful.
        let mut b = ProgramBuilder::new("kill-across");
        b.li(Reg::T0, 1); // seq 0: epoch 0
        b.nop(); // seq 1: epoch 0
        b.li(Reg::T0, 2); // seq 2: epoch 1 — the killing overwrite
        b.out(Reg::T0); // seq 3
        b.halt(); // seq 4
        let p = b.build().unwrap();
        let t = Emulator::new(&p).run().unwrap();
        let exact = DeadnessAnalysis::analyze(&t);
        let naive = ReferenceOracle::analyze(&t);
        assert_eq!(exact.verdict(0), Verdict::Dead(DeadKind::RegOverwritten));
        assert_eq!(naive.verdict(0), exact.verdict(0), "oracles must agree on the fixture");

        let split = DeadnessAnalysis::analyze_streamed(&p, 2).unwrap();
        assert_eq!(split.verdict(0), Verdict::Useful, "pending value must escape");
        // seq 0 escapes at its boundary — and so does seq 2, whose own
        // epoch also closes (the halt epoch follows) while t0 is pending.
        assert_eq!(split.escaped(), 2);
        assert_eq!(split.stats().dead_total + 1, exact.stats().dead_total);

        let whole = DeadnessAnalysis::analyze_streamed(&p, 64).unwrap();
        assert_eq!(whole.verdicts(), exact.verdicts());
        assert!(check_streaming(&p, &t, &exact).is_empty());
    }

    #[test]
    fn last_read_across_the_boundary_keeps_the_value_useful() {
        // The only read of seq 0 sits in the next epoch. Both paths call
        // the value Useful — exactly because the escape is conservative:
        // dropping the cross-epoch read edge must never create deadness.
        let mut b = ProgramBuilder::new("read-across");
        b.li(Reg::T0, 5); // seq 0: epoch 0
        b.nop(); // seq 1: epoch 0
        b.out(Reg::T0); // seq 2: epoch 1 — the last (only) read
        b.halt(); // seq 3
        let p = b.build().unwrap();
        let t = Emulator::new(&p).run().unwrap();
        let exact = DeadnessAnalysis::analyze(&t);
        let naive = ReferenceOracle::analyze(&t);
        assert_eq!(exact.verdict(0), Verdict::Useful);
        assert_eq!(naive.verdict(0), Verdict::Useful);

        let split = DeadnessAnalysis::analyze_streamed(&p, 2).unwrap();
        assert_eq!(split.verdict(0), Verdict::Useful);
        assert_eq!(split.escaped(), 1, "the pending register escapes at the boundary");
        assert_eq!(split.stats().dead_total, exact.stats().dead_total);
        assert!(check_streaming(&p, &t, &exact).is_empty());
    }

    #[test]
    fn partial_store_overlap_across_the_boundary() {
        // An 8-byte store straddles the boundary two ways: a 4-byte load
        // reads its low half (cross-epoch read edge) and two 4-byte stores
        // then kill it completely. Exact: the doubleword store is read, so
        // it is Useful; the two killing stores die unread. Streamed with
        // 2-record epochs: the straddling store escapes (same Useful
        // verdict via conservatism), and the killing stores — whose bytes
        // are still visible when their own non-final epochs close — escape
        // too, losing their StoreUnread verdicts soundly (never the other
        // direction).
        let mut b = ProgramBuilder::new("partial-across");
        b.li(Reg::T0, 0x1122_3344); // seq 0: epoch 0
        b.sd(Reg::T0, Reg::SP, -8); // seq 1: epoch 0 — 8 bytes pending
        b.lw(Reg::T1, Reg::SP, -8); // seq 2: epoch 1 — reads the low 4
        b.sw(Reg::T0, Reg::SP, -8); // seq 3: kills the low half, unread
        b.sw(Reg::T0, Reg::SP, -4); // seq 4: kills the high half, unread
        b.out(Reg::T1); // seq 5
        b.halt(); // seq 6
        let p = b.build().unwrap();
        let t = Emulator::new(&p).run().unwrap();
        let exact = DeadnessAnalysis::analyze(&t);
        let naive = ReferenceOracle::analyze(&t);
        assert_eq!(exact.verdict(1), Verdict::Useful, "the straddling store is read");
        assert_eq!(exact.verdict(3), Verdict::Dead(DeadKind::StoreUnread));
        assert_eq!(exact.verdict(4), Verdict::Dead(DeadKind::StoreUnread));
        for seq in 0..t.len() as u64 {
            assert_eq!(naive.verdict(seq), exact.verdict(seq), "seq {seq}");
        }

        let split = DeadnessAnalysis::analyze_streamed(&p, 2).unwrap();
        assert_eq!(split.verdict(1), Verdict::Useful);
        assert_eq!(split.verdict(3), Verdict::Useful, "pending bytes escape at the boundary");
        assert_eq!(split.verdict(4), Verdict::Useful, "pending bytes escape at the boundary");
        assert!(split.escaped() >= 3, "all three stores must escape (got {})", split.escaped());
        assert_eq!(
            split.stats().dead_total + 2,
            exact.stats().dead_total,
            "exactly the two escaped killing stores are missed"
        );

        // A whole-trace epoch sees program end before any boundary, so the
        // killing stores get their exact StoreUnread verdicts back.
        let whole = DeadnessAnalysis::analyze_streamed(&p, 64).unwrap();
        assert_eq!(whole.verdicts(), exact.verdicts());
        assert!(check_streaming(&p, &t, &exact).is_empty());
    }
}
